"""Protocol-on-simulator integration: manager and agent hosts.

This module wires the sans-io protocol machines to the simulated network
and clock.  A :class:`ProcessHost` owns one agent plus the local slice of
the component configuration and an application adapter
(:class:`ProcessApp`) that decides when the local safe state is reached;
a :class:`ManagerHost` owns the manager machine, the planner (for the
§4.4 re-planning cascade), and the execution trace.

:class:`AdaptationCluster` assembles a full system from
``(universe, invariants, actions)`` and runs adaptation requests end to
end, returning an :class:`AdaptationOutcome` and a checkable
:class:`~repro.trace.Trace`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlan, AdaptationPlanner
from repro.errors import NoSafePathError, SimulationError, UnsafeConfigurationError
from repro.protocol.agent import AgentMachine
from repro.protocol.effects import (
    AbortReset,
    AdaptationAborted,
    AdaptationComplete,
    AwaitUser,
    BlockProcess,
    CancelTimer,
    Effect,
    ExecuteInAction,
    ExecutePostAction,
    RequestReplan,
    ResumeProcess,
    Send,
    SetTimer,
    StartReset,
    StepCommitted,
    StepRolledBack,
    UndoInAction,
)
from repro.protocol.failures import FailurePolicy, ReplanKind
from repro.protocol.manager import FlushProvider, ManagerMachine, no_flush
from repro.protocol.messages import Envelope, FlushRequest, Message
from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.net import DelayModel, LossModel, Network
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    ConfigCommitted,
    NoteRecord,
    RollbackRecord,
    Trace,
)


class ProcessApp:
    """Application adapter: how a process quiesces, recomposes, and resumes.

    Subclass and override what the application needs; the defaults model a
    process that can quiesce instantly and whose recomposition is purely
    the component-set change.  ``self.host`` is set by :meth:`attach`.
    """

    host: "ProcessHost"

    def attach(self, host: "ProcessHost") -> None:
        self.host = host

    def start(self) -> None:
        """Begin application traffic (called once at simulation start)."""

    def begin_reset(
        self, step_key: str, action: AdaptiveAction, inject_flush: bool, await_flush: bool
    ) -> None:
        """Pre-action + reset initiation (Fig. 1 'resetting do: reset').

        Must eventually call ``self.host.local_safe(step_key)`` once the
        local safe state (plus any required drain condition) is reached.
        The default is immediate quiescence.
        """
        self.host.local_safe(step_key)

    def abort_reset(self, step_key: str) -> None:
        """Reset cancelled (rollback before the safe state was reached)."""

    def apply_action(self, action: AdaptiveAction) -> None:
        """Application-level structural change beyond the component set."""

    def undo_action(self, action: AdaptiveAction) -> None:
        """Reverse :meth:`apply_action` (rollback)."""

    def post_action(self, action: AdaptiveAction) -> None:
        """Local post-action, e.g. destroy replaced components."""

    def on_blocked(self) -> None:
        """Process was just blocked (held in its safe state)."""

    def on_resumed(self) -> None:
        """Full operation resumed."""

    def inject_marker(self, step_key: str) -> None:
        """Push a drain marker into the outgoing stream *without blocking*.

        Sent to upstream processes that are not themselves participants of
        a step whose downstream loses decode capability (see
        :class:`~repro.protocol.messages.FlushRequest`).  Default: no-op.
        """

    def resume_latency(self) -> float:
        """Simulated time needed to restore full operation (default: 0)."""
        return 0.0


class ProcessHost:
    """One simulated process: agent machine + local components + app."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        universe: ComponentUniverse,
        process_id: str,
        components: Iterable[str],
        app: Optional[ProcessApp] = None,
        manager_id: str = "manager",
    ):
        self.sim = sim
        self.network = network
        self.trace = trace
        self.universe = universe
        self.process_id = process_id
        self.components: Set[str] = set(components)
        self.blocked = False
        self.app = app or ProcessApp()
        self.app.attach(self)
        self.agent = AgentMachine(process_id, manager_id)
        network.register(process_id, self._on_envelope)

    # -- inbound ---------------------------------------------------------------
    def _on_envelope(self, envelope: Envelope) -> None:
        if isinstance(envelope.message, FlushRequest):
            # Out-of-band drain request: handled by the app, not the agent.
            self.app.inject_marker(envelope.message.step_key)
            return
        self.dispatch(self.agent.on_message(envelope.message))

    def local_safe(self, step_key: str) -> None:
        """App callback: local safe state (and drain condition) reached."""
        self.dispatch(self.agent.on_local_safe(step_key))

    # -- local component slice ----------------------------------------------------
    def _local_slice(self, names: Iterable[str]) -> Set[str]:
        return {
            name
            for name in names
            if self.universe.process_of(name) == self.process_id
        }

    def _apply_local(self, action: AdaptiveAction) -> None:
        removes = self._local_slice(action.removes)
        adds = self._local_slice(action.adds)
        missing = removes - self.components
        if missing:
            raise SimulationError(
                f"{self.process_id}: in-action {action.action_id} removes "
                f"components not present locally: {sorted(missing)}"
            )
        self.components -= removes
        self.components |= adds

    def _undo_local(self, action: AdaptiveAction) -> None:
        removes = self._local_slice(action.adds)  # inverse
        adds = self._local_slice(action.removes)
        self.components -= removes
        self.components |= adds

    # -- effect interpreter ---------------------------------------------------------
    def dispatch(self, effects: Iterable[Effect]) -> None:
        queue: Deque[Effect] = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, Send):
                self.network.send(
                    Envelope(self.process_id, effect.destination, effect.message)
                )
            elif isinstance(effect, StartReset):
                self.app.begin_reset(
                    effect.step_key,
                    effect.action,
                    effect.inject_flush,
                    effect.await_flush,
                )
            elif isinstance(effect, AbortReset):
                self.app.abort_reset(effect.step_key)
            elif isinstance(effect, BlockProcess):
                self.blocked = True
                self.trace.append(
                    BlockRecord(time=self.sim.now, process=self.process_id, blocked=True)
                )
                self.app.on_blocked()
            elif isinstance(effect, ResumeProcess):
                queue.extend(self._resume(effect.step_key))
            elif isinstance(effect, ExecuteInAction):
                self._apply_local(effect.action)
                self.app.apply_action(effect.action)
                self.trace.append(
                    AdaptationApplied(
                        time=self.sim.now,
                        process=self.process_id,
                        action_id=effect.action.action_id,
                        removes=frozenset(self._local_slice(effect.action.removes)),
                        adds=frozenset(self._local_slice(effect.action.adds)),
                    )
                )
                queue.extend(self.agent.on_in_action_applied(effect.step_key))
            elif isinstance(effect, UndoInAction):
                self._undo_local(effect.action)
                self.app.undo_action(effect.action)
                self.trace.append(
                    RollbackRecord(
                        time=self.sim.now,
                        process=self.process_id,
                        action_id=effect.action.action_id,
                    )
                )
                queue.extend(self.agent.on_undone(effect.step_key))
            elif isinstance(effect, ExecutePostAction):
                self.app.post_action(effect.action)
            else:  # pragma: no cover - defensive
                raise SimulationError(
                    f"{self.process_id}: unhandled agent effect {effect!r}"
                )

    def _resume(self, step_key: str) -> List[Effect]:
        latency = self.app.resume_latency()

        def finish() -> None:
            self.blocked = False
            self.trace.append(
                BlockRecord(time=self.sim.now, process=self.process_id, blocked=False)
            )
            self.app.on_resumed()
            self.dispatch(self.agent.on_resumed(step_key))

        if latency > 0:
            self.sim.schedule(latency, finish)
            return []
        finish()
        return []


@dataclass
class AdaptationOutcome:
    """Terminal result of one adaptation request."""

    status: str  # "complete" | "aborted" | "await_user"
    configuration: Configuration
    reason: str = ""
    steps_committed: int = 0
    steps_rolled_back: int = 0
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def succeeded(self) -> bool:
        return self.status == "complete"


class ManagerHost:
    """The adaptation manager process on the simulator."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        trace: Trace,
        planner: AdaptationPlanner,
        initial_config: Configuration,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        manager_id: str = "manager",
        replan_k: int = 8,
    ):
        self.sim = sim
        self.network = network
        self.trace = trace
        self.planner = planner
        self.manager_id = manager_id
        self.replan_k = replan_k
        self.machine = ManagerMachine(
            planner.universe,
            policy=policy,
            flush_provider=flush_provider,
            manager_id=manager_id,
        )
        self.committed = initial_config
        self.outcome: Optional[AdaptationOutcome] = None
        self._timers: Dict[str, TimerHandle] = {}
        self._started_at = 0.0
        network.register(manager_id, self._on_envelope)
        trace.append(
            ConfigCommitted(
                time=sim.now, configuration=initial_config.members, step_id="initial"
            )
        )

    # -- entry point -----------------------------------------------------------
    def request_adaptation(self, target: Configuration) -> None:
        """Plan current→target and start executing (detection & setup + realization)."""
        plan = self.planner.plan(self.committed, target)
        self.start_plan(plan)

    def start_plan(self, plan: AdaptationPlan) -> None:
        """Execute a pre-computed plan (must start at the committed config)."""
        if plan.source != self.committed:
            raise SimulationError(
                f"plan starts at {plan.source.label()} but system is at "
                f"{self.committed.label()}"
            )
        self.outcome = None
        self._started_at = self.sim.now
        self.dispatch(self.machine.start(plan))

    @property
    def done(self) -> bool:
        return self.outcome is not None

    # -- inbound ---------------------------------------------------------------
    def _on_envelope(self, envelope: Envelope) -> None:
        self.dispatch(self.machine.on_message(envelope.message))

    # -- effect interpreter -----------------------------------------------------
    def dispatch(self, effects: Iterable[Effect]) -> None:
        queue: Deque[Effect] = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, Send):
                self.network.send(
                    Envelope(self.manager_id, effect.destination, effect.message)
                )
            elif isinstance(effect, SetTimer):
                self._set_timer(effect.name, effect.delay)
            elif isinstance(effect, CancelTimer):
                self._cancel_timer(effect.name)
            elif isinstance(effect, StepCommitted):
                self.committed = effect.step.target
                self.trace.append(
                    ConfigCommitted(
                        time=self.sim.now,
                        configuration=effect.step.target.members,
                        step_id=effect.step_key,
                        action_id=effect.step.action.action_id,
                    )
                )
            elif isinstance(effect, StepRolledBack):
                self.trace.append(
                    NoteRecord(
                        time=self.sim.now,
                        text=(
                            f"step {effect.step_key} "
                            f"({effect.step.action.action_id}) rolled back: "
                            f"{effect.reason}"
                        ),
                    )
                )
            elif isinstance(effect, RequestReplan):
                queue.extend(self._handle_replan(effect))
            elif isinstance(effect, AdaptationComplete):
                self._finish("complete", effect.configuration, "target reached")
            elif isinstance(effect, AdaptationAborted):
                self._finish("aborted", effect.configuration, effect.reason)
            elif isinstance(effect, AwaitUser):
                self._finish("await_user", effect.configuration, effect.reason)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"manager: unhandled effect {effect!r}")

    def _finish(self, status: str, configuration: Configuration, reason: str) -> None:
        self.outcome = AdaptationOutcome(
            status=status,
            configuration=configuration,
            reason=reason,
            steps_committed=self.machine.steps_committed,
            steps_rolled_back=self.machine.steps_rolled_back,
            started_at=self._started_at,
            finished_at=self.sim.now,
        )
        self.trace.append(
            NoteRecord(time=self.sim.now, text=f"adaptation {status}: {reason}")
        )

    # -- timers ------------------------------------------------------------------
    def _set_timer(self, name: str, delay: float) -> None:
        self._cancel_timer(name)

        def fire() -> None:
            self._timers.pop(name, None)
            self.dispatch(self.machine.on_timeout(name))

        self._timers[name] = self.sim.schedule(delay, fire)

    def _cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    # -- re-planning (failure cascade, §4.4) ------------------------------------------
    def _avoids_failed_edges(
        self, plan: AdaptationPlan, failed: Tuple[Tuple[Configuration, str], ...]
    ) -> bool:
        failed_set = set(failed)
        return all(
            (step.source, step.action.action_id) not in failed_set
            for step in plan.steps
        )

    def _handle_replan(self, request: RequestReplan) -> List[Effect]:
        if request.kind == ReplanKind.ALTERNATE_TO_TARGET:
            destination = self.machine.target
        else:
            destination = self.machine.original_source
        assert destination is not None
        if request.current == destination:
            empty = AdaptationPlan(request.current, destination, (), 0.0)
            return self.machine.on_new_plan(empty)
        try:
            candidates = self.planner.plan_k(request.current, destination, self.replan_k)
        except (NoSafePathError, UnsafeConfigurationError):
            return self.machine.on_no_plan()
        for plan in candidates:
            if self._avoids_failed_edges(plan, request.failed_edges):
                return self.machine.on_new_plan(plan)
        return self.machine.on_no_plan()


class AdaptationCluster:
    """A complete simulated adaptive system: manager + per-process agents.

    Builds one :class:`ProcessHost` per distinct process in the universe,
    assigns each the local slice of ``initial_config``, and exposes
    :meth:`adapt_to` for end-to-end runs.
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        initial_config: Configuration,
        *,
        seed: int = 0,
        apps: Optional[Mapping[str, ProcessApp]] = None,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        default_delay: Optional[DelayModel] = None,
        default_loss: Optional[LossModel] = None,
        replan_k: int = 8,
    ):
        self.universe = universe
        self.invariants = invariants
        self.actions = actions
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim, default_delay=default_delay, default_loss=default_loss)
        self.trace = Trace()
        self.planner = AdaptationPlanner(universe, invariants, actions)
        self.planner.space.require_safe(initial_config, role="initial configuration")
        apps = dict(apps or {})
        self.hosts: Dict[str, ProcessHost] = {}
        for process_id in universe.processes():
            local = {
                name for name in initial_config.members
                if universe.process_of(name) == process_id
            }
            self.hosts[process_id] = ProcessHost(
                sim=self.sim,
                network=self.network,
                trace=self.trace,
                universe=universe,
                process_id=process_id,
                components=local,
                app=apps.pop(process_id, None),
            )
        if apps:
            raise SimulationError(f"apps supplied for unknown processes: {sorted(apps)}")
        self.manager = ManagerHost(
            sim=self.sim,
            network=self.network,
            trace=self.trace,
            planner=self.planner,
            initial_config=initial_config,
            policy=policy,
            flush_provider=flush_provider,
            replan_k=replan_k,
        )

    def start_apps(self) -> None:
        for host in self.hosts.values():
            host.app.start()

    @property
    def live_configuration(self) -> Configuration:
        """Union of every host's local component slice (the ground truth)."""
        members: Set[str] = set()
        for host in self.hosts.values():
            members |= host.components
        return Configuration(members)

    def adapt_to(
        self,
        target: Configuration,
        until: float = 1_000_000.0,
        max_events: int = 2_000_000,
    ) -> AdaptationOutcome:
        """Run one adaptation request to a terminal outcome."""
        self.manager.request_adaptation(target)
        self.sim.run(until=until, max_events=max_events, stop_when=lambda: self.manager.done)
        if self.manager.outcome is None:
            raise SimulationError(
                f"adaptation did not terminate by t={until} "
                f"(manager state {self.manager.machine.state.value})"
            )
        return self.manager.outcome

    def run_plan(
        self,
        plan: AdaptationPlan,
        until: float = 1_000_000.0,
        max_events: int = 2_000_000,
    ) -> AdaptationOutcome:
        """Execute a specific pre-computed plan (e.g. a deliberate alternate)."""
        self.manager.start_plan(plan)
        self.sim.run(until=until, max_events=max_events, stop_when=lambda: self.manager.done)
        if self.manager.outcome is None:
            raise SimulationError("plan execution did not terminate")
        return self.manager.outcome
