"""Backend contracts of the execution substrate.

A deployment backend supplies three small services and the shared
runtimes in :mod:`repro.exec.runtime` do everything else:

* :class:`Clock` — the current time in *protocol units* (the simulator's
  tick ≈ one millisecond).  Policies, timers, and trace timestamps all
  speak these units, so a backend that runs on wall time divides by its
  ``time_scale`` (wall seconds per unit).
* :class:`Transport` — fire-and-forget envelope delivery.  Inbound
  delivery is the backend's business: it must route each received
  envelope to the owning runtime's ``on_envelope``.
* :class:`TimerService` — named, re-armable one-shot timers.  Arming a
  name that is already armed replaces it; cancelling an unarmed or
  already-fired name is a no-op.  Delays are protocol units.

The module also ships the substrate pieces that are backend-agnostic:
:class:`WallClock` and :class:`ThreadTimerService` (shared by the
threaded and asyncio backends' construction paths), :class:`NullLock`
for single-threaded backends, and the :data:`STOP` sentinel that shuts
down a receive loop.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Protocol, runtime_checkable

from repro.protocol.messages import Envelope

STOP = object()  # sentinel delivered to a receive loop to shut it down


@runtime_checkable
class Clock(Protocol):
    """Source of the current time in protocol units."""

    def now(self) -> float:
        """Current time (simulated ticks or scaled wall time)."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Outbound half of the coordination channel."""

    def send(self, envelope: Envelope) -> None:
        """Deliver *envelope* to its destination endpoint."""
        ...


@runtime_checkable
class TimerService(Protocol):
    """Named one-shot timers in protocol units."""

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        """Arm (or re-arm) *name* to invoke *callback* after *delay* units."""
        ...

    def cancel_timer(self, name: str) -> None:
        """Disarm *name* (no-op if not armed)."""
        ...

    def cancel_all(self) -> None:
        """Disarm every armed timer (backend shutdown)."""
        ...


class NullLock:
    """No-op context manager for single-threaded backends."""

    def __enter__(self) -> "NullLock":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class WallClock:
    """Protocol-unit clock over ``time.monotonic``.

    Args:
        time_scale: wall seconds per protocol unit (default 1 ms/unit).
    """

    def __init__(self, time_scale: float = 0.001):
        self.time_scale = time_scale
        self._t0 = time.monotonic()

    def now(self) -> float:
        return (time.monotonic() - self._t0) / self.time_scale


class ThreadTimerService:
    """Named timers over ``threading.Timer`` (the threaded backend).

    Callbacks fire on a fresh timer thread; the owning runtime is
    responsible for its own locking (both shared runtimes are).
    """

    def __init__(self, time_scale: float = 0.001):
        self.time_scale = time_scale
        self._timers: Dict[str, threading.Timer] = {}
        self._lock = threading.Lock()

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        timer = threading.Timer(
            delay * self.time_scale, self._fire, args=(name, callback)
        )
        timer.daemon = True
        with self._lock:
            old = self._timers.pop(name, None)
            if old is not None:
                old.cancel()
            self._timers[name] = timer
        timer.start()

    def _fire(self, name: str, callback: Callable[[], None]) -> None:
        with self._lock:
            self._timers.pop(name, None)
        callback()

    def cancel_timer(self, name: str) -> None:
        with self._lock:
            timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()

    def cancel_all(self) -> None:
        with self._lock:
            timers, self._timers = list(self._timers.values()), {}
        for timer in timers:
            timer.cancel()
