"""Tests for trace rendering (event log + lane timeline)."""

import pytest

from repro.apps.video import VideoScenario
from repro.render import render_events, render_timeline
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    ConfigCommitted,
    CorruptionRecord,
    RollbackRecord,
    Trace,
)


def small_trace():
    trace = Trace()
    trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"A"})))
    trace.append(BlockRecord(time=2.0, process="p1", blocked=True))
    trace.append(
        AdaptationApplied(time=3.0, process="p1", action_id="S",
                          removes=frozenset({"A"}), adds=frozenset({"B"}))
    )
    trace.append(BlockRecord(time=4.0, process="p1", blocked=False))
    trace.append(
        ConfigCommitted(time=5.0, configuration=frozenset({"B"}),
                        step_id="plan1/0#0", action_id="S")
    )
    return trace


class TestRenderEvents:
    def test_contains_all_event_kinds(self):
        trace = small_trace()
        trace.append(RollbackRecord(time=6.0, process="p1", action_id="S"))
        trace.append(CorruptionRecord(time=7.0, process="p1", detail="bad pkt"))
        text = render_events(trace)
        assert "commit initial" in text
        assert "p1: blocked" in text and "p1: resumed" in text
        assert "in-action S [-A +B]" in text
        assert "ROLLBACK S" in text
        assert "CORRUPTION bad pkt" in text

    def test_chronological(self):
        text = render_events(small_trace())
        lines = text.splitlines()
        times = [float(line.split("t=")[1].split()[0]) for line in lines]
        assert times == sorted(times)


class TestRenderTimeline:
    def test_empty_trace(self):
        assert render_timeline(Trace()) == "(empty trace)"

    def test_lanes_and_markers(self):
        text = render_timeline(small_trace(), width=40)
        lines = text.splitlines()
        assert lines[0].startswith("commits")
        assert any(line.startswith("p1") for line in lines)
        p1_lane = next(line for line in lines if line.startswith("p1"))
        assert "█" in p1_lane  # the blocked interval
        assert "A" in p1_lane  # the in-action
        assert lines[0].count("|") == 2  # two commits

    def test_still_blocked_at_end_extends_bar(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"A"})))
        trace.append(BlockRecord(time=5.0, process="p1", blocked=True))
        trace.append(ConfigCommitted(time=10.0, configuration=frozenset({"A"})))
        text = render_timeline(trace, width=20)
        p1_lane = next(l for l in text.splitlines() if l.startswith("p1"))
        assert p1_lane.rstrip().endswith("█")

    def test_video_scenario_renders(self):
        scenario = VideoScenario(seed=1)
        scenario.run(warmup=20.0, cooldown=20.0)
        text = render_timeline(scenario.cluster.trace)
        assert "handheld" in text and "laptop" in text and "server" in text
        assert "|" in text.splitlines()[0]
        events = render_events(scenario.cluster.trace)
        assert "commit plan1/0#0 (A2)" in events
