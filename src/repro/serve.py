"""PlanningService: a thread-safe, amortizing front end over planners.

The ROADMAP north star is serving heavy adaptation-request traffic: many
concurrent ``(source, target)`` requests against the *same* compiled
``(S, I, T, A)`` spec.  Building a fresh :class:`AdaptationPlanner` per
request re-derives the safe space, the SAG, and every shortest path from
scratch; the service instead keys one shared planner per spec by a
**content hash** of the spec itself — so two callers handing in equal
specs (even separately constructed objects) land on the same warm
space + SAG + shortest-path-tree caches.

Concurrency model (lock-per-spec, lock-free warm reads):

* the service-level registry lock is held only to look up / create a
  spec entry — never while planning;
* each spec entry owns an ``RLock`` serializing *cold* work (safe-space
  enumeration, SAG build, Dijkstra) for that spec only — concurrent
  traffic against different specs never contends;
* warm reads bypass the lock entirely: a planned pair is served from
  :meth:`AdaptationPlanner.peek_plan`, a single dict lookup that is safe
  under the GIL because plan caches only ever grow.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.actions import ActionLibrary
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import (
    LAZY_PLAN_COMPONENTS,
    AdaptationPlan,
    AdaptationPlanner,
)
from repro.errors import NoSafePathError
from repro.expr.ast import to_text
from repro.ltl.ast import PFormula, property_to_text
from repro.ltl.compile import CompiledProperty
from repro.ltl.paths import PathVerdict, check_plan
from repro.ltl.paths import verify_paths as _verify_paths


def spec_digest(
    universe: ComponentUniverse,
    invariants: InvariantSet,
    actions: ActionLibrary,
) -> str:
    """Content hash of a compiled ``(S, I, A)`` spec.

    Canonical JSON over declaration-ordered primitives: component
    ``(name, process)`` pairs, invariant source texts, and action deltas.
    Declaration order is semantic (it fixes bit positions and tie-breaks),
    so it is part of the key — two specs differing only in component
    order plan over different bit encodings and must not share caches.
    """
    doc = {
        "components": [
            (name, universe.component(name).process) for name in universe.order
        ],
        "invariants": [to_text(inv.expr) for inv in invariants],
        "actions": [
            (
                action.action_id,
                sorted(action.removes),
                sorted(action.adds),
                action.cost,
            )
            for action in actions
        ],
    }
    blob = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class ServiceStats:
    """Counters for one service (snapshot; see :meth:`PlanningService.stats`)."""

    specs: int
    warm_hits: int
    cold_plans: int
    lazy_plans: int = 0
    #: path-quantified verifications served from a warm compiled property
    verify_hits: int = 0


class _SpecEntry:
    """One spec's shared planner plus its cold-path lock and counters."""

    __slots__ = (
        "planner",
        "lock",
        "warm_hits",
        "cold_plans",
        "lazy_plans",
        "properties",
        "verify_hits",
    )

    def __init__(self, planner: AdaptationPlanner):
        self.planner = planner
        self.lock = threading.RLock()
        self.warm_hits = 0
        self.cold_plans = 0
        self.lazy_plans = 0
        #: compiled-property cache, keyed by the canonical formula text
        self.properties: Dict[str, CompiledProperty] = {}
        self.verify_hits = 0


class PlanningService:
    """Shared planning front end for many callers over many specs.

    Args:
        workers: forwarded to each planner's
            :class:`~repro.core.space.SafeConfigurationSpace` for parallel
            safe-space enumeration.
        spt_cache_size: per-planner bound on cached shortest-path trees.
        lazy_components: specs with more components than this are planned
            through :meth:`AdaptationPlanner.lazy_plan` — the frontier
            search that never materializes the safe space or the SAG —
            instead of the eager CSR pipeline.  ``None`` disables the
            routing (every spec plans eagerly, 2^n be damned).  Lazy
            results land in the same per-pair plan cache, so warm reads
            stay lock-free regardless of which path planned the pair.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        spt_cache_size: int = AdaptationPlanner.SPT_CACHE_SIZE,
        lazy_components: Optional[int] = LAZY_PLAN_COMPONENTS,
    ):
        self.workers = workers
        self.spt_cache_size = spt_cache_size
        self.lazy_components = lazy_components
        self._registry_lock = threading.Lock()
        self._specs: Dict[str, _SpecEntry] = {}

    # -- spec registry -----------------------------------------------------------
    def _entry_for(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ) -> _SpecEntry:
        digest = spec_digest(universe, invariants, actions)
        entry = self._specs.get(digest)  # lock-free fast path (dict read)
        if entry is not None:
            return entry
        with self._registry_lock:
            entry = self._specs.get(digest)
            if entry is None:
                entry = _SpecEntry(
                    AdaptationPlanner(
                        universe,
                        invariants,
                        actions,
                        workers=self.workers,
                        spt_cache_size=self.spt_cache_size,
                    )
                )
                self._specs[digest] = entry
        return entry

    def planner_for(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ) -> AdaptationPlanner:
        """The shared planner for this spec (created on first use).

        Callers holding a planner directly (e.g. a manager runtime) get
        the warm caches but bypass the service's cold-path lock — fine
        for a single-threaded runtime loop, not for concurrent callers.
        """
        return self._entry_for(universe, invariants, actions).planner

    # -- planning ----------------------------------------------------------------
    def plan(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        source: Configuration,
        target: Configuration,
    ) -> AdaptationPlan:
        """One MAP request against the shared spec caches.

        Warm pairs return without taking any lock; cold pairs serialize
        on the spec's lock (one Dijkstra, then every waiter reads the
        fresh cache entry).

        Raises like :meth:`AdaptationPlanner.plan` (unsafe endpoints,
        unreachable target).
        """
        entry = self._entry_for(universe, invariants, actions)
        hit, plan = entry.planner.peek_plan(source, target)
        if hit:
            entry.warm_hits += 1
            if plan is None:
                raise NoSafePathError(
                    f"no safe adaptation path from {source.label()} "
                    f"to {target.label()}"
                )
            return plan
        with entry.lock:
            if self._oversized(universe):
                entry.lazy_plans += 1
                return entry.planner.lazy_plan(source, target)
            entry.cold_plans += 1
            return entry.planner.plan(source, target)

    def _oversized(self, universe: ComponentUniverse) -> bool:
        """True when the spec must be routed to the lazy frontier path."""
        return (
            self.lazy_components is not None
            and len(universe) > self.lazy_components
        )

    def plan_many(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        pairs: Sequence[Tuple[Configuration, Configuration]],
    ) -> List[Optional[AdaptationPlan]]:
        """Batched MAP solving against the shared spec caches.

        Semantics follow :meth:`AdaptationPlanner.plan_many`: one result
        per request in input order, ``None`` for unreachable pairs.
        Oversized specs answer each pair via the lazy frontier search
        (unsafe endpoints still raise; unreachable pairs yield ``None``).
        """
        entry = self._entry_for(universe, invariants, actions)
        with entry.lock:
            if self._oversized(universe):
                entry.lazy_plans += len(pairs)
                results: List[Optional[AdaptationPlan]] = []
                for source, target in pairs:
                    try:
                        results.append(entry.planner.lazy_plan(source, target))
                    except NoSafePathError:
                        results.append(None)
                return results
            entry.cold_plans += len(pairs)
            return entry.planner.plan_many(pairs)

    # -- temporal verification ---------------------------------------------------
    def _compiled_property(
        self, entry: _SpecEntry, phi: PFormula
    ) -> CompiledProperty:
        """The spec's compiled form of *phi* (compiled once, then warm).

        Keyed by the canonical formula text, so structurally equal
        formulas — even separately constructed objects — share one
        compilation per spec digest.  Warm lookups bump ``verify_hits``.
        """
        key = property_to_text(phi)
        compiled = entry.properties.get(key)  # lock-free (dict only grows)
        if compiled is not None:
            entry.verify_hits += 1
            return compiled
        with entry.lock:
            compiled = entry.properties.get(key)
            if compiled is None:
                compiled = CompiledProperty(
                    phi, entry.planner.universe.atom_bits
                )
                entry.properties[key] = compiled
        return compiled

    def verify_paths(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        source: Configuration,
        target: Configuration,
        phi: PFormula,
        quantifier: str = "all",
        k: Optional[int] = None,
        max_expansions: Optional[int] = None,
    ) -> PathVerdict:
        """Path-quantified verification against the shared spec caches.

        Semantics of :func:`repro.ltl.paths.verify_paths`, with the
        service's amortization on top: the property compiles once per
        spec digest, the path enumeration reuses (and feeds) the shared
        plan caches, and oversized specs route to the lazy frontier
        exactly as :meth:`plan` does.
        """
        entry = self._entry_for(universe, invariants, actions)
        compiled = self._compiled_property(entry, phi)
        with entry.lock:
            return _verify_paths(
                entry.planner,
                source,
                target,
                phi,
                quantifier,
                k,
                lazy=self._oversized(universe),
                max_expansions=max_expansions,
                compiled=compiled,
            )

    def check_plans(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        pairs: Sequence[Tuple[Configuration, Configuration]],
        phi: PFormula,
    ) -> List[Optional[Tuple[AdaptationPlan, Optional[int]]]]:
        """Batch-check φ along the MAP of every request pair.

        Plans the batch via :meth:`plan_many`, then evaluates the
        compiled property along each resulting plan's committed
        configurations.  One result per pair, in input order:
        ``None`` for unreachable pairs, else ``(plan, violation)``
        where *violation* is the index of the first committed
        configuration falsifying φ (``None`` when the plan satisfies
        it end to end).
        """
        entry = self._entry_for(universe, invariants, actions)
        compiled = self._compiled_property(entry, phi)
        plans = self.plan_many(universe, invariants, actions, pairs)
        return [
            None
            if plan is None
            else (plan, check_plan(compiled, entry.planner, plan))
            for plan in plans
        ]

    # -- introspection -----------------------------------------------------------
    def stats(self) -> ServiceStats:
        """Aggregate counters across every registered spec."""
        with self._registry_lock:
            entries = list(self._specs.values())
        return ServiceStats(
            specs=len(entries),
            warm_hits=sum(e.warm_hits for e in entries),
            cold_plans=sum(e.cold_plans for e in entries),
            lazy_plans=sum(e.lazy_plans for e in entries),
            verify_hits=sum(e.verify_hits for e in entries),
        )
