"""A* search, including a *lazy* variant over implicitly defined graphs.

The paper's §7 names the scalability problem directly: "Dijkstra's shortest
path algorithm requires the entire SAG to be generated.  However, in many
cases, only a small fraction of the graph is actually related to the given
adaptation."  :func:`lazy_astar` implements the proposed remedy — best-first
partial exploration that expands safe configurations on demand via a
successor function, never materializing the full graph.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple, TypeVar

from repro.graphs.digraph import Digraph, Edge
from repro.graphs.dijkstra import Path

N = TypeVar("N", bound=Hashable)
L = TypeVar("L", bound=Hashable)

# successor function for implicit graphs: node -> iterable of (label, weight, next_node)
SuccessorFn = Callable[[N], Iterable[Tuple[L, float, N]]]
HeuristicFn = Callable[[N], float]


def astar_path(
    graph: Digraph[N, L],
    source: N,
    target: N,
    heuristic: HeuristicFn,
) -> Optional[Path[N, L]]:
    """A* over an explicit :class:`Digraph`.

    With an admissible *heuristic* (never overestimates the remaining cost)
    the returned path is optimal; with ``heuristic = lambda n: 0`` this
    degenerates to Dijkstra.
    """

    def successors(node: N) -> Iterable[Tuple[L, float, N]]:
        for edge in graph.adjacency(node):
            yield edge.label, edge.weight, edge.target

    return lazy_astar(source, target, successors, heuristic)


def lazy_astar(
    source: N,
    target: N,
    successors: SuccessorFn,
    heuristic: HeuristicFn,
    max_expansions: Optional[int] = None,
    *,
    cost_bound: Optional[float] = None,
    stats: Optional[Dict[str, object]] = None,
) -> Optional[Path[N, L]]:
    """A* over an *implicit* graph defined by a successor function.

    Args:
        source: start node.
        target: goal node.
        successors: yields ``(label, weight, next_node)`` triples; called
            only for nodes the search actually expands.
        heuristic: admissible estimate of remaining cost to *target*.
        max_expansions: optional safety valve; when exceeded the search
            gives up and returns ``None``.
        stats: optional dict updated in place with run accounting:
            ``"expansions"`` (nodes expanded) and ``"exhausted"`` (the
            search gave up on *max_expansions* rather than proving the
            target unreachable).  Callers running many budgeted searches
            against one shared budget — the lazy Yen enumeration in
            :meth:`~repro.core.planner.AdaptationPlanner.lazy_plan_k` —
            need both to deduct spend and to tell "no path" from "ran
            out", which the ``None`` return alone cannot.
        cost_bound: optional known upper bound on the optimal cost.
            Relaxations whose tentative cost exceeds it (beyond a small
            relative float slack) are dropped.  This cannot change the
            result when the bound is correct: a node reached only above
            the bound would settle strictly after the target in the
            unbounded run, so neither its heap entry nor its tentative
            ``(g, hops)`` state can influence any relaxation that happens
            before the target settles — the search prefix, and with it
            the returned path, its cost, *and* its tie-breaking, are
            identical.  The bound only trims the frontier fan-out beyond
            the goal ellipse (used by the exact lazy replay in
            :meth:`~repro.core.planner.AdaptationPlanner.lazy_plan`).

    Returns:
        An optimal :class:`Path`, or ``None`` if *target* is unreachable
        (or the expansion budget ran out).
    """
    bound: Optional[float] = None
    if cost_bound is not None:
        # relative slack absorbs summation-order float drift in the
        # externally computed bound without ever rejecting an equal cost
        bound = cost_bound + 1e-9 * (1.0 + abs(cost_bound))
    g_score: Dict[N, float] = {source: 0.0}
    hops: Dict[N, int] = {source: 0}
    came_from: Dict[N, Edge[N, L]] = {}
    settled: set = set()
    counter = 0
    heap: List[Tuple[float, int, int, N]] = [(heuristic(source), 0, counter, source)]
    expansions = 0

    def account(exhausted: bool) -> None:
        if stats is not None:
            stats["expansions"] = expansions
            stats["exhausted"] = exhausted

    while heap:
        _, nhops, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            account(False)
            return _rebuild(source, target, came_from, g_score[target])
        expansions += 1
        if max_expansions is not None and expansions > max_expansions:
            account(True)
            return None
        for label, weight, nxt in successors(node):
            if weight < 0:
                raise ValueError(f"negative edge weight {weight} from {node!r}")
            if nxt in settled:
                continue
            tentative = g_score[node] + weight
            if bound is not None and tentative > bound:
                continue
            best = g_score.get(nxt)
            if best is None or tentative < best or (
                tentative == best and nhops + 1 < hops[nxt]
            ):
                g_score[nxt] = tentative
                hops[nxt] = nhops + 1
                came_from[nxt] = Edge(node, nxt, label, weight)
                counter += 1
                heapq.heappush(
                    heap, (tentative + heuristic(nxt), nhops + 1, counter, nxt)
                )
    account(False)
    return None


def _rebuild(
    source: N, target: N, came_from: Dict[N, Edge[N, L]], cost: float
) -> Path[N, L]:
    if source == target:
        return Path(nodes=(source,), edges=(), cost=0.0)
    edges: List[Edge[N, L]] = []
    node = target
    while node != source:
        edge = came_from[node]
        edges.append(edge)
        node = edge.source
    edges.reverse()
    nodes = (source,) + tuple(edge.target for edge in edges)
    return Path(nodes=nodes, edges=tuple(edges), cost=cost)
