"""The paper's video multicasting case study (§5), end to end.

A video server multicasts an encrypted stream to two clients — a handheld
(short battery, limited compute) and a laptop.  The sender has DES-64 and
DES-128 encoders (E1, E2); the handheld has decoders D1 (64), D2 (128/64
compatible), D3 (128); the laptop has D4 (64) and D5 (128).  The
adaptation objective is to harden security at run time: move from the
64-bit configuration ``0100101`` to the 128-bit configuration ``1010010``
without corrupting a single frame.

* :mod:`repro.apps.video.system` — the universe, invariants (§5.1),
  Table 2's action library, and component factories.
* :mod:`repro.apps.video.server` / :mod:`repro.apps.video.client` —
  simulator process apps implementing Figure 3's pipelines.
* :mod:`repro.apps.video.scenario` — cluster assembly, the video CCS
  spec, the drain-marker flush provider, and the paper walk-through.
"""

from repro.apps.video.system import (
    DECODER_SCHEMES,
    ENCODER_SCHEMES,
    PAPER_SOURCE_BITS,
    PAPER_TARGET_BITS,
    make_decoder,
    make_encoder,
    video_actions,
    video_invariants,
    video_planner,
    video_universe,
)
from repro.apps.video.scenario import (
    VIDEO_CCS,
    VideoScenario,
    build_video_cluster,
    cid_for,
    video_flush_provider,
)
from repro.apps.video.server import VideoServerApp
from repro.apps.video.client import VideoClientApp

__all__ = [
    "video_universe",
    "video_invariants",
    "video_actions",
    "video_planner",
    "PAPER_SOURCE_BITS",
    "PAPER_TARGET_BITS",
    "ENCODER_SCHEMES",
    "DECODER_SCHEMES",
    "make_encoder",
    "make_decoder",
    "VIDEO_CCS",
    "cid_for",
    "video_flush_provider",
    "build_video_cluster",
    "VideoScenario",
    "VideoServerApp",
    "VideoClientApp",
]
