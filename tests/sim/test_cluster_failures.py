"""Failure-handling integration tests (§4.4) on the simulated cluster."""

import pytest

from repro.protocol.failures import FailurePolicy
from repro.protocol.manager import ManagerState
from repro.safety import check_safe
from repro.sim import (
    AdaptationCluster,
    BernoulliLoss,
    QuiescentApp,
    StuckApp,
    UniformDelay,
)

FAST_POLICY = FailurePolicy(
    reset_timeout=60.0,
    resume_timeout=40.0,
    rollback_timeout=40.0,
    retransmit_interval=15.0,
)


def make_cluster(universe, invariants, actions, source, *, apps=None, **kwargs):
    if apps is None:
        apps = {p: QuiescentApp(2.0) for p in universe.processes()}
    kwargs.setdefault("policy", FAST_POLICY)
    return AdaptationCluster(universe, invariants, actions, source, apps=apps, **kwargs)


class TestLossOfMessage:
    def test_transient_loss_still_completes(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(
            universe, invariants, actions, source,
            seed=42,
            default_loss=BernoulliLoss(0.2),
            default_delay=UniformDelay(0.5, 3.0),
        )
        outcome = cluster.adapt_to(target)
        assert outcome.succeeded
        assert cluster.live_configuration == target
        check_safe(cluster.trace, invariants).raise_if_unsafe()

    def test_heavy_loss_may_roll_back_but_stays_safe(
        self, universe, invariants, actions, source, target
    ):
        for seed in range(5):
            cluster = make_cluster(
                universe, invariants, actions, source,
                seed=seed,
                default_loss=BernoulliLoss(0.45),
                default_delay=UniformDelay(0.5, 3.0),
            )
            outcome = cluster.adapt_to(target)
            check_safe(cluster.trace, invariants).raise_if_unsafe()
            assert outcome.status in ("complete", "aborted", "await_user")
            # wherever we ended, the system sits at a safe configuration
            assert cluster.planner.space.is_safe(cluster.manager.committed)

    def test_partition_before_resume_aborts_cleanly(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        # Cut off the handheld (first step's only participant) entirely.
        cluster.network.partition("manager", "handheld")
        outcome = cluster.adapt_to(target)
        # rollback messages are also lost → manager exhausts its budget
        assert outcome.status == "await_user"
        assert cluster.live_configuration == source

    def test_partition_healed_mid_adaptation(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.network.partition("manager", "handheld")
        cluster.sim.schedule(30.0, lambda: cluster.network.heal_all())
        outcome = cluster.adapt_to(target)
        assert outcome.succeeded
        assert cluster.live_configuration == target


class TestFailToReset:
    def test_stuck_process_rolls_back_and_escalates(
        self, universe, invariants, actions, source, target
    ):
        apps = {
            "handheld": StuckApp(),
            "server": QuiescentApp(2.0),
            "laptop": QuiescentApp(2.0),
        }
        cluster = make_cluster(universe, invariants, actions, source, apps=apps)
        outcome = cluster.adapt_to(target)
        # every path to the 128-bit config needs the handheld decoder swap,
        # and the video library cannot return to source (no reverse actions)
        assert outcome.status == "await_user"
        assert outcome.steps_rolled_back >= 2
        assert cluster.planner.space.is_safe(cluster.manager.committed)
        check_safe(cluster.trace, invariants).raise_if_unsafe()

    def test_transiently_stuck_process_recovers_via_retry(
        self, universe, invariants, actions, source, target
    ):
        apps = {
            "handheld": StuckApp(stuck_attempts=1, quiesce_delay=2.0),
            "server": QuiescentApp(2.0),
            "laptop": QuiescentApp(2.0),
        }
        cluster = make_cluster(universe, invariants, actions, source, apps=apps)
        outcome = cluster.adapt_to(target)
        assert outcome.succeeded
        assert outcome.steps_rolled_back == 1  # first attempt timed out
        check_safe(cluster.trace, invariants).raise_if_unsafe()

    def test_rollback_restores_partial_progress(
        self, universe, invariants, actions, source, target
    ):
        # Laptop stuck: A17 (+D5, laptop-only) is the first step to fail —
        # but the handheld's A2 commits first, so the system must settle at
        # {D2,D4,E1}, a safe configuration that is NOT the source.
        apps = {
            "handheld": QuiescentApp(2.0),
            "server": QuiescentApp(2.0),
            "laptop": StuckApp(),
        }
        cluster = make_cluster(universe, invariants, actions, source, apps=apps)
        outcome = cluster.adapt_to(target)
        assert outcome.status == "await_user"
        assert cluster.manager.committed == universe.from_bits("0101001")
        assert cluster.live_configuration == universe.from_bits("0101001")
        check_safe(cluster.trace, invariants).raise_if_unsafe()


class TestReturnToSourcePaths:
    def test_failure_at_source_with_no_alternates_aborts_in_place(
        self, universe, invariants, actions, source, target
    ):
        # max_alternate_plans=0: after the retry fails, the manager asks to
        # "return to source" while already there — the driver answers with
        # the empty plan and the adaptation aborts cleanly at the source.
        apps = {
            "handheld": StuckApp(),
            "server": QuiescentApp(2.0),
            "laptop": QuiescentApp(2.0),
        }
        policy = FailurePolicy(
            reset_timeout=60.0,
            resume_timeout=40.0,
            rollback_timeout=40.0,
            retransmit_interval=15.0,
            max_alternate_plans=0,
        )
        cluster = AdaptationCluster(
            universe, invariants, actions, source, apps=apps, policy=policy
        )
        outcome = cluster.adapt_to(target)
        assert outcome.status == "aborted"
        assert outcome.configuration == source
        assert cluster.live_configuration == source
        check_safe(cluster.trace, invariants).raise_if_unsafe()


class TestResumeLatency:
    def test_slow_resume_delays_commit(
        self, universe, invariants, actions, source, target
    ):
        apps = {
            p: QuiescentApp(quiesce_delay=1.0, resume_delay=5.0)
            for p in universe.processes()
        }
        cluster = make_cluster(universe, invariants, actions, source, apps=apps)
        outcome = cluster.adapt_to(target)
        assert outcome.succeeded
        # 5 steps × (1 quiesce + 5 resume + message hops) ≥ 30 time units
        assert outcome.duration >= 30.0
        check_safe(cluster.trace, invariants).raise_if_unsafe()


class TestManagerStateAfterOutcomes:
    def test_manager_reusable_after_success(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.adapt_to(target)
        assert cluster.manager.machine.state == ManagerState.RUNNING

    def test_await_user_is_terminal(self, universe, invariants, actions, source, target):
        apps = {
            "handheld": StuckApp(),
            "server": QuiescentApp(2.0),
            "laptop": QuiescentApp(2.0),
        }
        cluster = make_cluster(universe, invariants, actions, source, apps=apps)
        cluster.adapt_to(target)
        assert cluster.manager.machine.state == ManagerState.AWAIT_USER
