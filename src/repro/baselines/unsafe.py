"""The naive baseline: immediate hot swap, no discipline at all.

"Unsafe adaptation typically involves communication among components"
(§3) — this strategy demonstrates it.  At the scheduled moment every
process's component slice is recomposed instantly, mid-stream, without
quiescing, blocking, draining, or visiting intermediate safe
configurations.  Packets in flight that were encrypted under the old
encoder arrive at chains that can no longer decode them and surface as
corrupted frames.

The ``stagger`` option spreads the per-process swaps over time (as
uncoordinated operators would), which additionally commits *unsafe
intermediate configurations* — e.g. the new 128-bit encoder active while
a client still runs only the 64-bit decoder — tripping the dependency
clause of the safety definition as well.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.common import BaselineResult, apply_slice, commit, delta_action
from repro.core.model import Configuration
from repro.sim.cluster import AdaptationCluster


class UnsafeSwap:
    """Schedule an immediate (or staggered) unsafe recomposition."""

    def __init__(
        self,
        cluster: AdaptationCluster,
        target: Configuration,
        at_time: float,
        stagger: float = 0.0,
    ):
        self.cluster = cluster
        self.target = target
        self.at_time = at_time
        self.stagger = stagger
        self.result = BaselineResult(strategy="unsafe")

    def schedule(self) -> BaselineResult:
        """Arm the swap on the cluster's simulator."""
        source = self.cluster.live_configuration
        action = delta_action(source, self.target, action_id="unsafe-swap")
        hosts = [
            self.cluster.hosts[p]
            for p in sorted(self.cluster.hosts)
            if action.touched & {
                name for name in self.cluster.universe.names
                if self.cluster.universe.process_of(name) == p
            }
        ]
        delay = self.at_time
        self.result.started_at = self.at_time
        for index, host in enumerate(hosts):
            is_last = index == len(hosts) - 1

            def swap(host=host, is_last=is_last) -> None:
                apply_slice(host, action)
                self.result.swaps += 1
                # Every partial state the system now runs in is visible:
                # commit the live configuration after each local change.
                commit(
                    self.cluster,
                    self.cluster.live_configuration,
                    step_id=f"unsafe/{host.process_id}",
                    action_id=action.action_id,
                )
                if is_last:
                    self.result.finished_at = self.cluster.sim.now
                    self.result.done = True

            self.cluster.sim.schedule(delay, swap)
            delay += self.stagger
        return self.result
