"""Property-based tests: planner validity over random instances."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import random_system
from repro.core.planner import AdaptationPlanner
from repro.errors import NoSafePathError, UnsafeConfigurationError


def try_plan(planner, source, target):
    try:
        return planner.plan(source, target)
    except (NoSafePathError, UnsafeConfigurationError):
        return None


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_plans_are_valid_when_they_exist(seed):
    system = random_system(seed)
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    plan = try_plan(planner, system.source, system.target)
    if plan is None:
        return
    config = system.source
    for step in plan.steps:
        assert step.action.is_applicable(config)
        config = step.action.apply(config)
        assert system.invariants.all_hold(config)
    assert config == system.target
    assert plan.total_cost == pytest.approx(
        sum(step.action.cost for step in plan.steps)
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_lazy_astar_matches_dijkstra_cost(seed):
    system = random_system(seed)
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    eager = try_plan(planner, system.source, system.target)
    try:
        lazy = planner.plan_lazy(system.source, system.target)
    except (NoSafePathError, UnsafeConfigurationError):
        lazy = None
    if eager is None:
        assert lazy is None
    else:
        assert lazy is not None
        assert lazy.total_cost == pytest.approx(eager.total_cost)


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_plan_k_sorted_and_first_is_optimal(seed, k):
    system = random_system(seed)
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    best = try_plan(planner, system.source, system.target)
    if best is None:
        return
    plans = planner.plan_k(system.source, system.target, k)
    costs = [p.total_cost for p in plans]
    assert costs == sorted(costs)
    assert costs[0] == pytest.approx(best.total_cost)
    assert len({p.action_ids for p in plans}) == len(plans)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_planning_is_deterministic(seed):
    system = random_system(seed)
    p1 = AdaptationPlanner(system.universe, system.invariants, system.actions)
    p2 = AdaptationPlanner(system.universe, system.invariants, system.actions)
    a = try_plan(p1, system.source, system.target)
    b = try_plan(p2, system.source, system.target)
    if a is None:
        assert b is None
    else:
        assert b is not None and a.action_ids == b.action_ids
