"""Detection & setup phase: Minimum Adaptation Path planning (paper §4.2).

The :class:`AdaptationPlanner` performs the three setup steps on demand:

1. construct the safe-configuration set,
2. construct the Safe Adaptation Graph,
3. run Dijkstra for the Minimum Adaptation Path (MAP) — plus the extras
   the rest of the paper needs: k-best alternates (failure handling §4.4),
   lazy A* partial exploration and collaborative-set decomposition
   (scalability, §7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.collaborative import collaborative_sets, project_invariants
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.sag import SafeAdaptationGraph
from repro.core.space import SafeConfigurationSpace
from repro.errors import NoSafePathError
from repro.graphs import k_shortest_paths, lazy_astar, shortest_path
from repro.graphs.dijkstra import Path


@dataclass(frozen=True)
class PlanStep:
    """One adaptation step: an ordered configuration pair plus its action."""

    index: int
    action: AdaptiveAction
    source: Configuration
    target: Configuration

    def participants(self, universe: ComponentUniverse) -> FrozenSet[str]:
        """Processes whose agents take part in this step."""
        return self.action.participants(universe)

    def __repr__(self) -> str:
        return (
            f"PlanStep({self.index}: {self.action.action_id} "
            f"{self.source.label()} -> {self.target.label()})"
        )


@dataclass(frozen=True)
class AdaptationPlan:
    """A safe adaptation path: safe configurations joined by adaptation steps."""

    source: Configuration
    target: Configuration
    steps: Tuple[PlanStep, ...]
    total_cost: float

    @property
    def action_ids(self) -> Tuple[str, ...]:
        return tuple(step.action.action_id for step in self.steps)

    @property
    def configurations(self) -> Tuple[Configuration, ...]:
        """All configurations visited, source first."""
        if not self.steps:
            return (self.source,)
        return (self.steps[0].source,) + tuple(step.target for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def describe(self) -> str:
        """Multi-line, human-readable rendering used by examples and benches."""
        lines = [
            f"plan {self.source.label()} -> {self.target.label()} "
            f"(cost {self.total_cost:g}, {len(self.steps)} steps)"
        ]
        for step in self.steps:
            lines.append(
                f"  {step.index + 1}. {step.action.action_id}: "
                f"{step.action.description or step.action.operation_text()} "
                f"[cost {step.action.cost:g}]"
            )
        return "\n".join(lines)


class AdaptationPlanner:
    """Runs the detection & setup phase for a fixed ``(universe, I, T, A)``.

    The planner is **incremental**: the safe space, the SAG, and every
    computed plan are cached.  The §4.4 failure cascade — retry the step,
    ask for the next minimum adaptation path, roll back to the source —
    re-enters the planner with shifting ``(source, target)`` pairs; each
    answer is derived once from the shared SAG and the mask-level safety
    memo, then served from the plan cache on repetition.
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
    ):
        self.universe = universe
        self.invariants = invariants
        self.actions = actions
        self.space = SafeConfigurationSpace(universe, invariants)
        self._sag: Optional[SafeAdaptationGraph] = None
        self._plan_cache: Dict[
            Tuple[Configuration, Configuration], Optional[AdaptationPlan]
        ] = {}
        self._plan_k_cache: Dict[
            Tuple[Configuration, Configuration, int], Tuple[AdaptationPlan, ...]
        ] = {}

    def reset_caches(self) -> None:
        """Drop the cached SAG and plans (after mutating the action library)."""
        self._sag = None
        self._plan_cache.clear()
        self._plan_k_cache.clear()

    # -- setup steps -------------------------------------------------------------
    @property
    def sag(self) -> SafeAdaptationGraph:
        """The Safe Adaptation Graph (built on first use, then cached)."""
        if self._sag is None:
            self._sag = SafeAdaptationGraph.build(self.space, self.actions)
        return self._sag

    def _validate_endpoints(self, source: Configuration, target: Configuration) -> None:
        self.universe.validate_members(source.members)
        self.universe.validate_members(target.members)
        self.space.require_safe(source, role="source configuration")
        self.space.require_safe(target, role="target configuration")

    def _plan_from_path(self, path: Path) -> AdaptationPlan:
        steps = []
        for index, edge in enumerate(path.edges):
            steps.append(
                PlanStep(
                    index=index,
                    action=self.actions.get(edge.label),
                    source=edge.source,
                    target=edge.target,
                )
            )
        return AdaptationPlan(
            source=path.source,
            target=path.target,
            steps=tuple(steps),
            total_cost=path.cost,
        )

    # -- planning entry points -----------------------------------------------------
    def plan(self, source: Configuration, target: Configuration) -> AdaptationPlan:
        """The Minimum Adaptation Path (Dijkstra over the full SAG).

        Results are cached per ``(source, target)`` — the §4.4 cascade
        re-requests the same routes while retrying/rolling back and gets
        the memoized plan instead of a fresh graph search.

        Raises:
            UnsafeConfigurationError: source or target violates invariants.
            NoSafePathError: target unreachable through safe configurations.
        """
        self._validate_endpoints(source, target)
        key = (source, target)
        if key in self._plan_cache:
            plan = self._plan_cache[key]
        else:
            path = shortest_path(self.sag.graph, source, target)
            plan = None if path is None else self._plan_from_path(path)
            self._plan_cache[key] = plan
        if plan is None:
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to {target.label()}"
            )
        return plan

    def plan_k(
        self, source: Configuration, target: Configuration, k: int
    ) -> List[AdaptationPlan]:
        """Up to *k* minimum-cost plans in non-decreasing cost order (Yen).

        Plan 2 is the paper's "second minimum adaptation path" used when a
        step fails and the manager re-routes.  Cached per
        ``(source, target, k)`` for the same reason as :meth:`plan`.
        """
        self._validate_endpoints(source, target)
        key = (source, target, k)
        cached = self._plan_k_cache.get(key)
        if cached is None:
            paths = k_shortest_paths(self.sag.graph, source, target, k)
            cached = tuple(self._plan_from_path(path) for path in paths)
            self._plan_k_cache[key] = cached
        return list(cached)

    def plan_lazy(
        self,
        source: Configuration,
        target: Configuration,
        max_expansions: Optional[int] = None,
    ) -> AdaptationPlan:
        """MAP by A* partial exploration — never materializes the SAG (§7).

        Expands safe configurations on demand from the action library; the
        admissible heuristic is ``ceil(|Δ| / max_flip) * min_cost`` where Δ
        is the symmetric difference to the target, ``max_flip`` the largest
        number of components any single action changes, and ``min_cost``
        the cheapest action cost.
        """
        self._validate_endpoints(source, target)
        actions = tuple(self.actions)
        if not actions:
            if source == target:
                return AdaptationPlan(source, target, (), 0.0)
            raise NoSafePathError("no adaptive actions available")
        max_flip = max(len(a.touched) for a in actions)
        min_cost = min(a.cost for a in actions)
        masked = self.actions.compiled_for(self.universe)
        if all(m is not None for m in masked):
            return self._plan_lazy_masked(
                source, target, actions, masked, max_flip, min_cost, max_expansions
            )

        # Some action touches components outside the universe: such an
        # action can route through configurations that have no bit
        # encoding, so the search stays on the frozenset representation.
        def heuristic(config: Configuration) -> float:
            delta = len(config.symmetric_difference(target))
            if delta == 0:
                return 0.0
            return math.ceil(delta / max_flip) * min_cost

        def successors(config: Configuration):
            for action in actions:
                if action.is_applicable(config):
                    result = action.apply(config)
                    if self.space.is_safe(result):
                        yield action.action_id, action.cost, result

        path = lazy_astar(source, target, successors, heuristic, max_expansions)
        if path is None:
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to {target.label()}"
            )
        return self._plan_from_path(path)

    def _plan_lazy_masked(
        self,
        source: Configuration,
        target: Configuration,
        actions: Tuple[AdaptiveAction, ...],
        masked: Sequence,
        max_flip: int,
        min_cost: float,
        max_expansions: Optional[int],
    ) -> AdaptationPlan:
        """Lazy A* over integer masks — the bitmask fast path.

        Node identity, successor order, and heap tie-breaking are
        bijective with the frozenset search, so the returned plan is
        identical; only the per-expansion cost drops from set algebra to
        a few int ops against the shared safety memo.
        """
        universe = self.universe
        source_mask = universe.mask_of(source)
        target_mask = universe.mask_of(target)
        is_safe_mask = self.space.is_safe_mask
        pairs = tuple(zip(actions, masked))

        def heuristic(mask: int) -> float:
            delta = (mask ^ target_mask).bit_count()
            if delta == 0:
                return 0.0
            return math.ceil(delta / max_flip) * min_cost

        def successors(mask: int):
            for action, m in pairs:
                required = m.required
                if (mask & required) == required and not (mask & m.forbidden):
                    result = (mask & ~m.clear) | m.set_bits
                    if is_safe_mask(result):
                        yield action.action_id, action.cost, result

        path = lazy_astar(source_mask, target_mask, successors, heuristic, max_expansions)
        if path is None:
            raise NoSafePathError(
                f"no safe adaptation path from {source.label()} to {target.label()}"
            )
        # decode the mask path back into configurations
        configs: List[Configuration] = [source]
        for mask in path.nodes[1:-1]:
            configs.append(universe.from_mask(mask))
        if len(path.nodes) > 1:
            configs.append(target)
        steps = []
        for index, edge in enumerate(path.edges):
            steps.append(
                PlanStep(
                    index=index,
                    action=self.actions.get(edge.label),
                    source=configs[index],
                    target=configs[index + 1],
                )
            )
        return AdaptationPlan(
            source=source,
            target=target,
            steps=tuple(steps),
            total_cost=path.cost,
        )

    def plan_collaborative(
        self, source: Configuration, target: Configuration
    ) -> AdaptationPlan:
        """Plan per collaborative set and concatenate (§7 decomposition).

        Each collaborative set is planned in its own sub-universe with the
        invariants and actions that fall inside it, using lazy A*; the
        per-set plans are then replayed in order against the global
        configuration.  Exact when the decomposition is valid (invariants
        and actions never span sets — guaranteed by construction).
        """
        self._validate_endpoints(source, target)
        groups = collaborative_sets(self.universe, self.invariants, self.actions)
        current = source
        steps: List[PlanStep] = []
        total = 0.0
        for group in groups:
            group_source = Configuration(source.members & group)
            group_target = Configuration(target.members & group)
            if group_source == group_target:
                continue
            sub_universe = ComponentUniverse(
                [self.universe.component(name)
                 for name in self.universe.order if name in group]
            )
            sub_planner = AdaptationPlanner(
                sub_universe,
                project_invariants(self.invariants, group),
                self.actions.restricted_to(group),
            )
            sub_plan = sub_planner.plan_lazy(group_source, group_target)
            for step in sub_plan.steps:
                next_config = step.action.apply(current)
                steps.append(
                    PlanStep(
                        index=len(steps),
                        action=step.action,
                        source=current,
                        target=next_config,
                    )
                )
                current = next_config
                total += step.action.cost
        if current != target:
            raise NoSafePathError(
                "collaborative planning could not reach the target "
                f"(stopped at {current.label()})"
            )
        return AdaptationPlan(source=source, target=target, steps=tuple(steps), total_cost=total)
