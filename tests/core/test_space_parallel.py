"""Parallel safe-space enumeration: identical results, merged memos."""

from hypothesis import given, settings, strategies as st

from repro.bench.workloads import random_system, replicated_video_system
from repro.core.space import MIN_PARALLEL_COMPONENTS, SafeConfigurationSpace


def test_parallel_equals_serial_on_replicated_video():
    system = replicated_video_system(2)  # 14 components
    assert len(system.universe) >= MIN_PARALLEL_COMPONENTS
    serial = SafeConfigurationSpace(system.universe, system.invariants)
    parallel = SafeConfigurationSpace(system.universe, system.invariants, workers=2)
    assert parallel.enumerate() == serial.enumerate()
    assert parallel.enumerate_masks() == serial.enumerate_masks()


def test_parallel_merges_worker_memos():
    system = replicated_video_system(2)
    parallel = SafeConfigurationSpace(system.universe, system.invariants, workers=2)
    parallel.enumerate()
    memo = parallel.safe_memo
    assert memo
    reference = SafeConfigurationSpace(system.universe, system.invariants)
    for mask, verdict in memo.items():
        assert reference.is_safe_mask(mask) == verdict
    # the merged memo covers every safe configuration
    for mask in parallel.enumerate_masks():
        assert memo[mask] is True


def test_small_universe_stays_serial(universe, invariants):
    space = SafeConfigurationSpace(universe, invariants, workers=4)
    assert len(universe) < MIN_PARALLEL_COMPONENTS
    reference = SafeConfigurationSpace(universe, invariants)
    assert space.enumerate() == reference.enumerate()


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None)
def test_parallel_equals_serial_on_random_systems(seed):
    system = random_system(
        seed, n_components=MIN_PARALLEL_COMPONENTS, n_invariants=4, n_actions=8
    )
    serial = SafeConfigurationSpace(system.universe, system.invariants)
    parallel = SafeConfigurationSpace(system.universe, system.invariants, workers=2)
    assert parallel.enumerate() == serial.enumerate()
