"""Critical communication segments (paper §3, §3.2).

"We use a set of finite sequence[s] of indivisible actions (named atomic
actions) to model the set of critical communication segments CCS. [...]
We say an adaptive system does not interrupt critical communication
segments if [...] for all critical communication CID, we have
``S_CID ∈ CCS``."

:class:`CCSSpec` is that language: a finite set of *complete* atomic-action
sequences.  A segment observed in a trace is judged:

* **complete** if its sequence is exactly one of the allowed sequences;
* **in progress** if it is a proper prefix of at least one allowed
  sequence (permitted only at the very end of a trace — the system was
  cut off mid-segment by observation, not by adaptation);
* **interrupted/invalid** otherwise.

The paper's video example uses one segment shape per packet:
``encode → send → receive → decode``; its UDP example's global safe
condition — "the receiver has received all the datagram packets that the
sender has sent" — is precisely "no segment is stuck between *send* and
*receive* when the in-action fires".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.trace import CommRecord, Trace


@dataclass(frozen=True)
class SegmentVerdict:
    """Judgement of one observed segment."""

    cid: int
    sequence: Tuple[str, ...]
    complete: bool
    in_progress: bool

    @property
    def interrupted(self) -> bool:
        return not self.complete and not self.in_progress


class CCSSpec:
    """A critical-communication-segment language over atomic actions."""

    def __init__(self, allowed: Iterable[Sequence[str]], name: str = "ccs"):
        self.name = name
        self._allowed: Tuple[Tuple[str, ...], ...] = tuple(
            tuple(seq) for seq in allowed
        )
        if not self._allowed:
            raise ValueError("CCSSpec needs at least one allowed sequence")
        for seq in self._allowed:
            if not seq:
                raise ValueError("allowed sequences must be non-empty")
        self._prefixes: FrozenSet[Tuple[str, ...]] = frozenset(
            seq[:i] for seq in self._allowed for i in range(len(seq) + 1)
        )
        self._complete: FrozenSet[Tuple[str, ...]] = frozenset(self._allowed)

    @classmethod
    def single(cls, *actions: str, name: str = "ccs") -> "CCSSpec":
        """Language with exactly one allowed sequence."""
        return cls([actions], name=name)

    @property
    def allowed(self) -> Tuple[Tuple[str, ...], ...]:
        return self._allowed

    def is_complete(self, sequence: Sequence[str]) -> bool:
        """``sequence ∈ CCS`` — the paper's membership test."""
        return tuple(sequence) in self._complete

    def is_prefix(self, sequence: Sequence[str]) -> bool:
        """True iff *sequence* can still be extended into a member."""
        return tuple(sequence) in self._prefixes

    def judge(self, cid: int, sequence: Sequence[str]) -> SegmentVerdict:
        seq = tuple(sequence)
        complete = self.is_complete(seq)
        in_progress = (not complete) and self.is_prefix(seq)
        return SegmentVerdict(
            cid=cid, sequence=seq, complete=complete, in_progress=in_progress
        )

    def judge_trace(self, trace: Trace) -> List[SegmentVerdict]:
        """Judge every CID appearing in *trace*."""
        return [self.judge(cid, trace.comm_sequence(cid)) for cid in trace.cids()]

    def open_cids(self, trace: Trace) -> Tuple[int, ...]:
        """Segments started but not completed (drain check for global safety)."""
        return tuple(
            verdict.cid
            for verdict in self.judge_trace(trace)
            if not verdict.complete
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CCSSpec({self.name!r}, {len(self._allowed)} sequences)"


class SegmentTracker:
    """Incremental segment bookkeeping for live components.

    Processes use this to answer "am I in a local safe state?" — i.e. no
    critical communication segment involving my components is currently
    open.  It mirrors :class:`CCSSpec` but works event-by-event instead of
    over a finished trace.
    """

    def __init__(self, spec: CCSSpec):
        self.spec = spec
        self._open: Dict[int, List[str]] = {}
        self._violations: List[Tuple[int, Tuple[str, ...]]] = []
        self.completed = 0

    def observe(self, cid: int, action: str) -> None:
        """Record one atomic action; classifies the segment incrementally."""
        sequence = self._open.setdefault(cid, [])
        sequence.append(action)
        if self.spec.is_complete(sequence):
            del self._open[cid]
            self.completed += 1
        elif not self.spec.is_prefix(sequence):
            self._violations.append((cid, tuple(sequence)))
            del self._open[cid]

    @property
    def open_count(self) -> int:
        return len(self._open)

    @property
    def quiescent(self) -> bool:
        """No open segments — the local safe state of paper §3.2."""
        return not self._open

    @property
    def violations(self) -> Tuple[Tuple[int, Tuple[str, ...]], ...]:
        return tuple(self._violations)
