"""Asyncio backend: the third deployment substrate.

Proof that :mod:`repro.exec` is genuinely pluggable, and the
high-concurrency path of the roadmap: every process is a coroutine on
one event loop, coordination messages travel over ``asyncio.Queue``s,
timers are ``loop.call_later``, and — because the loop serializes all
callbacks — the shared runtimes run entirely lock-free
(:class:`~repro.exec.substrate.NullLock`).

The same :class:`~repro.exec.app.AppAdapter` subclasses that run on the
simulator and the threaded runtime run here unchanged, as long as they
only use portable host services (``local_safe``, ``timers``,
``components``).

Usage::

    async with AioAdaptationSystem(universe, invariants, actions, source) as system:
        outcome = await system.adapt_to(target)

or synchronously via :func:`run_aio_adaptation`.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Iterable, Mapping, Optional

from repro.core.actions import ActionLibrary
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner
from repro.errors import ExecutionError
from repro.exec.app import AppAdapter
from repro.exec.runtime import AdaptationOutcome, AgentRuntime, ManagerRuntime
from repro.exec.substrate import STOP, WallClock
from repro.protocol.failures import FailurePolicy
from repro.protocol.manager import FlushProvider, no_flush
from repro.protocol.messages import Envelope
from repro.trace import Trace


class AioTransport:
    """Envelope router over per-endpoint ``asyncio.Queue``s.

    Single-loop only: ``send`` uses ``put_nowait`` and must be called
    from the event-loop thread (which is where every runtime callback
    executes on this backend).
    """

    def __init__(self) -> None:
        self._queues: Dict[str, "asyncio.Queue"] = {}
        self.messages_sent = 0

    def register(self, endpoint: str) -> "asyncio.Queue":
        if endpoint in self._queues:
            raise ExecutionError(f"endpoint {endpoint!r} already registered")
        q: "asyncio.Queue" = asyncio.Queue()
        self._queues[endpoint] = q
        return q

    def send(self, envelope: Envelope) -> None:
        q = self._queues.get(envelope.destination)
        if q is None:
            raise ExecutionError(f"no endpoint {envelope.destination!r}")
        self.messages_sent += 1
        q.put_nowait(envelope)

    def stop_endpoint(self, endpoint: str) -> None:
        """Deliver the STOP sentinel (receive loop exits after draining)."""
        q = self._queues.get(endpoint)
        if q is not None:
            q.put_nowait(STOP)


class AioTimerService:
    """Named timers over ``loop.call_later`` (protocol units × time_scale)."""

    def __init__(self, time_scale: float = 0.001):
        self.time_scale = time_scale
        self._handles: Dict[str, "asyncio.TimerHandle"] = {}

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self.cancel_timer(name)
        loop = asyncio.get_running_loop()
        self._handles[name] = loop.call_later(
            delay * self.time_scale, self._fire, name, callback
        )

    def _fire(self, name: str, callback: Callable[[], None]) -> None:
        self._handles.pop(name, None)
        callback()

    def cancel_timer(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.cancel()

    def cancel_all(self) -> None:
        handles, self._handles = list(self._handles.values()), {}
        for handle in handles:
            handle.cancel()


class AioAgentHost(AgentRuntime):
    """One adaptive process: receive coroutine + agent machine + app."""

    def __init__(
        self,
        process_id: str,
        transport: AioTransport,
        universe: ComponentUniverse,
        components: Iterable[str],
        app: Optional[AppAdapter] = None,
        trace: Optional[Trace] = None,
        clock: Optional[WallClock] = None,
        manager_id: str = "manager",
        time_scale: float = 0.001,
    ):
        super().__init__(
            process_id,
            universe,
            components,
            clock=clock or WallClock(time_scale),
            transport=transport,
            timers=AioTimerService(time_scale),
            trace=trace if trace is not None else Trace(),
            app=app,
            manager_id=manager_id,
        )
        self._queue = transport.register(process_id)
        self._task: Optional["asyncio.Task"] = None

    def start(self) -> None:
        """Launch the receive coroutine (requires a running loop)."""
        self._task = asyncio.get_running_loop().create_task(
            self._receive_loop(), name=f"agent-{self.process_id}"
        )
        self.app.start()

    async def stop(self) -> None:
        self.app.stop()
        self.timers.cancel_all()
        self.transport.stop_endpoint(self.process_id)
        if self._task is not None:
            await self._task

    async def _receive_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is STOP:
                return
            assert isinstance(item, Envelope)
            self.on_envelope(item)


class AioAdaptationSystem:
    """Asyncio deployment of the safe-adaptation protocol.

    Args:
        time_scale: wall seconds per protocol time unit (policies speak
            the simulator's units ≈ milliseconds; the default maps one
            unit to 1 ms of real time).
    """

    def __init__(
        self,
        universe: ComponentUniverse,
        invariants: InvariantSet,
        actions: ActionLibrary,
        initial_config: Configuration,
        apps: Optional[Mapping[str, AppAdapter]] = None,
        policy: Optional[FailurePolicy] = None,
        flush_provider: FlushProvider = no_flush,
        time_scale: float = 0.001,
        replan_k: int = 8,
        manager_id: str = "manager",
        bus=None,
        planner: Optional[AdaptationPlanner] = None,
    ):
        self.universe = universe
        # An injected planner (e.g. a PlanningService-shared one) brings
        # its warm space/SAG/SPT caches with it.
        self.planner = planner or AdaptationPlanner(universe, invariants, actions)
        self.planner.space.require_safe(initial_config, role="initial configuration")
        self.transport = AioTransport()
        self.trace = Trace(bus=bus)
        self.time_scale = time_scale
        self.manager_id = manager_id
        self._clock = WallClock(time_scale)
        apps = dict(apps or {})
        self.hosts: Dict[str, AioAgentHost] = {}
        for process_id in universe.processes():
            local = {
                name for name in initial_config.members
                if universe.process_of(name) == process_id
            }
            self.hosts[process_id] = AioAgentHost(
                process_id,
                self.transport,
                universe,
                local,
                app=apps.pop(process_id, None),
                trace=self.trace,
                clock=self._clock,
                manager_id=manager_id,
                time_scale=time_scale,
            )
        if apps:
            raise ExecutionError(f"apps supplied for unknown processes: {sorted(apps)}")
        self.manager = ManagerRuntime(
            self.planner,
            initial_config,
            clock=self._clock,
            transport=self.transport,
            timers=AioTimerService(time_scale),
            trace=self.trace,
            policy=policy,
            flush_provider=flush_provider,
            manager_id=manager_id,
            replan_k=replan_k,
            on_terminal=self._on_terminal,
        )
        self._queue = self.transport.register(manager_id)
        self._task: Optional["asyncio.Task"] = None
        self._terminal: Optional["asyncio.Event"] = None

    # -- compatibility accessors ---------------------------------------------------
    @property
    def committed(self) -> Configuration:
        return self.manager.committed

    @property
    def outcome(self) -> Optional[AdaptationOutcome]:
        return self.manager.outcome

    def now(self) -> float:
        """Elapsed protocol time units since construction."""
        return self._clock.now()

    # -- lifecycle ----------------------------------------------------------------
    async def start(self) -> None:
        self._terminal = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(
            self._receive_loop(), name="adaptation-manager"
        )
        for host in self.hosts.values():
            host.start()

    async def shutdown(self) -> None:
        self.manager.timers.cancel_all()
        for host in self.hosts.values():
            await host.stop()
        self.transport.stop_endpoint(self.manager_id)
        if self._task is not None:
            await self._task

    async def __aenter__(self) -> "AioAdaptationSystem":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.shutdown()

    async def _receive_loop(self) -> None:
        while True:
            item = await self._queue.get()
            if item is STOP:
                return
            assert isinstance(item, Envelope)
            self.manager.on_envelope(item)

    # -- adaptation entry ------------------------------------------------------------
    async def adapt_to(
        self, target: Configuration, timeout: float = 30.0
    ) -> AdaptationOutcome:
        """Plan and execute current→target; awaits the terminal outcome."""
        if self._terminal is None:
            raise ExecutionError("system not started (use 'async with' or start())")
        self._terminal.clear()
        self.manager.request_adaptation(target)
        try:
            await asyncio.wait_for(self._terminal.wait(), timeout=timeout)
        except asyncio.TimeoutError:
            raise ExecutionError(
                f"adaptation did not finish within {timeout}s "
                f"(manager state {self.manager.machine.state.value})"
            ) from None
        assert self.manager.outcome is not None
        return self.manager.outcome

    def _on_terminal(self, outcome: AdaptationOutcome) -> None:
        if self._terminal is not None:
            self._terminal.set()


def run_aio_adaptation(
    universe: ComponentUniverse,
    invariants: InvariantSet,
    actions: ActionLibrary,
    source: Configuration,
    target: Configuration,
    apps: Optional[Mapping[str, AppAdapter]] = None,
    policy: Optional[FailurePolicy] = None,
    flush_provider: FlushProvider = no_flush,
    time_scale: float = 0.001,
    replan_k: int = 8,
    timeout: float = 30.0,
    bus=None,
):
    """Synchronous convenience wrapper: build, run one adaptation, shut down.

    Returns ``(outcome, system)`` — the system is already shut down but
    its trace and hosts remain inspectable.
    """

    async def _run():
        system = AioAdaptationSystem(
            universe,
            invariants,
            actions,
            source,
            apps=apps,
            policy=policy,
            flush_provider=flush_provider,
            time_scale=time_scale,
            replan_k=replan_k,
            bus=bus,
        )
        async with system:
            outcome = await system.adapt_to(target, timeout=timeout)
        return outcome, system

    return asyncio.run(_run())
