"""Unit tests for components, configurations, and the bit-vector codec."""

import pytest

from repro.core.model import Component, ComponentUniverse, Configuration
from repro.errors import ConfigurationError, ModelError, UnknownComponentError


class TestComponent:
    def test_defaults(self):
        c = Component("D1")
        assert c.process == "local"

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Component("")

    def test_empty_process_rejected(self):
        with pytest.raises(ModelError):
            Component("D1", process="")


class TestConfiguration:
    def test_membership_and_iteration_sorted(self):
        config = Configuration(["B", "A"])
        assert "A" in config
        assert list(config) == ["A", "B"]
        assert len(config) == 2

    def test_equality_with_frozenset(self):
        assert Configuration(["A"]) == frozenset({"A"})
        assert Configuration(["A"]) == Configuration(["A"])

    def test_hashable(self):
        assert {Configuration(["A"]), Configuration(["A"])} == {Configuration(["A"])}

    def test_immutable(self):
        config = Configuration(["A"])
        with pytest.raises(AttributeError):
            config.members = frozenset()

    def test_invalid_member_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([""])

    def test_with_without(self):
        config = Configuration(["A"])
        assert config.with_components(["B"]) == frozenset({"A", "B"})
        assert config.without_components(["A"]) == frozenset()

    def test_apply_delta(self):
        config = Configuration(["A", "B"])
        out = config.apply_delta(frozenset({"A"}), frozenset({"C"}))
        assert out == frozenset({"B", "C"})

    def test_apply_delta_validates_removes(self):
        with pytest.raises(ConfigurationError):
            Configuration(["A"]).apply_delta(frozenset({"X"}), frozenset())

    def test_apply_delta_validates_adds(self):
        with pytest.raises(ConfigurationError):
            Configuration(["A"]).apply_delta(frozenset(), frozenset({"A"}))

    def test_symmetric_difference(self):
        a = Configuration(["A", "B"])
        b = Configuration(["B", "C"])
        assert a.symmetric_difference(b) == frozenset({"A", "C"})

    def test_label(self):
        assert Configuration(["B", "A"]).label() == "{A,B}"


class TestComponentUniverse:
    @pytest.fixture
    def universe(self):
        return ComponentUniverse.from_names(
            ["D5", "D4", "E1"], {"D5": "laptop", "D4": "laptop", "E1": "server"}
        )

    def test_order_preserved(self, universe):
        assert universe.order == ("D5", "D4", "E1")

    def test_duplicate_rejected(self):
        with pytest.raises(ModelError):
            ComponentUniverse([Component("A"), Component("A")])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            ComponentUniverse([])

    def test_lookup(self, universe):
        assert universe.component("E1").process == "server"
        with pytest.raises(UnknownComponentError):
            universe.component("Z")

    def test_processes_in_declaration_order(self, universe):
        assert universe.processes() == ("laptop", "server")

    def test_processes_of(self, universe):
        assert universe.processes_of(["D4", "E1"]) == frozenset({"laptop", "server"})

    def test_validate_members(self, universe):
        universe.validate_members(["D4"])
        with pytest.raises(UnknownComponentError):
            universe.validate_members(["D4", "Z"])

    def test_bits_round_trip(self, universe):
        config = universe.configuration("D4", "E1")
        bits = universe.to_bits(config)
        assert bits == "011"
        assert universe.from_bits(bits) == config

    def test_from_bits_validates_length_and_chars(self, universe):
        with pytest.raises(ConfigurationError):
            universe.from_bits("01")
        with pytest.raises(ConfigurationError):
            universe.from_bits("0x1")

    def test_all_configurations_count_and_order(self, universe):
        configs = list(universe.all_configurations())
        assert len(configs) == 8
        assert configs[0] == frozenset()
        assert configs[-1] == frozenset({"D5", "D4", "E1"})
        # ascending bit-vector order
        assert [universe.to_bits(c) for c in configs[:3]] == ["000", "001", "010"]


class TestPaperEncoding:
    def test_paper_bit_vectors(self, universe, source, target):
        assert universe.to_bits(source) == "0100101"
        assert source == frozenset({"D4", "D1", "E1"})
        assert universe.to_bits(target) == "1010010"
        assert target == frozenset({"D5", "D3", "E2"})

    def test_paper_processes(self, universe):
        assert universe.process_of("E1") == "server"
        assert universe.process_of("D2") == "handheld"
        assert universe.process_of("D5") == "laptop"
