"""A 16-round Feistel block cipher (DES stand-in; see DESIGN.md §4).

Structure mirrors DES: 8-byte blocks, a balanced Feistel network, and a
per-round subkey schedule; the round function is SHA-256-based instead of
the DES S-boxes (this is a *simulation substrate*, not a security
product — do not use it to protect real data).  Arbitrary-length messages
use PKCS#7 padding and CBC chaining with a deterministic IV derived from
the key and a caller-supplied nonce, so encryption is a pure function —
which the deterministic simulator requires.
"""

from __future__ import annotations

import hashlib
from typing import List

BLOCK_SIZE = 8
_HALF = BLOCK_SIZE // 2


class FeistelCipher:
    """Balanced Feistel network over 8-byte blocks.

    Args:
        key: any non-empty byte string; the schedule hashes it per round.
        rounds: Feistel rounds (16 matches DES; must be >= 2).
    """

    def __init__(self, key: bytes, rounds: int = 16):
        if not key:
            raise ValueError("key must be non-empty")
        if rounds < 2:
            raise ValueError("need at least 2 rounds")
        self.rounds = rounds
        self._subkeys: List[bytes] = [
            hashlib.sha256(key + round_index.to_bytes(4, "big")).digest()[:8]
            for round_index in range(rounds)
        ]
        self._iv_seed = hashlib.sha256(b"iv" + key).digest()

    # -- round function -----------------------------------------------------------
    @staticmethod
    def _round(half: bytes, subkey: bytes) -> bytes:
        return hashlib.sha256(half + subkey).digest()[:_HALF]

    @staticmethod
    def _xor(a: bytes, b: bytes) -> bytes:
        return bytes(x ^ y for x, y in zip(a, b))

    # -- block operations ------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        left, right = block[:_HALF], block[_HALF:]
        for subkey in self._subkeys:
            left, right = right, self._xor(left, self._round(right, subkey))
        return right + left  # final swap, as in DES

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        right, left = block[:_HALF], block[_HALF:]
        for subkey in reversed(self._subkeys):
            left, right = self._xor(right, self._round(left, subkey)), left
        return left + right

    # -- message operations (CBC + PKCS#7) ----------------------------------------------
    def _iv(self, nonce: int) -> bytes:
        return hashlib.sha256(
            self._iv_seed + nonce.to_bytes(8, "big", signed=False)
        ).digest()[:BLOCK_SIZE]

    def encrypt(self, data: bytes, nonce: int = 0) -> bytes:
        """Encrypt arbitrary-length *data* (CBC mode, deterministic IV)."""
        padded = pad(data)
        previous = self._iv(nonce)
        out = bytearray()
        for offset in range(0, len(padded), BLOCK_SIZE):
            block = self._xor(padded[offset : offset + BLOCK_SIZE], previous)
            previous = self.encrypt_block(block)
            out.extend(previous)
        return bytes(out)

    def decrypt(self, data: bytes, nonce: int = 0) -> bytes:
        """Invert :meth:`encrypt`.  Raises ValueError on malformed input."""
        if len(data) % BLOCK_SIZE:
            raise ValueError("ciphertext length must be a multiple of the block size")
        if not data:
            raise ValueError("empty ciphertext")
        previous = self._iv(nonce)
        out = bytearray()
        for offset in range(0, len(data), BLOCK_SIZE):
            block = data[offset : offset + BLOCK_SIZE]
            out.extend(self._xor(self.decrypt_block(block), previous))
            previous = block
        return unpad(bytes(out))


def pad(data: bytes) -> bytes:
    """PKCS#7 padding to a multiple of the block size (always adds >= 1 byte)."""
    fill = BLOCK_SIZE - (len(data) % BLOCK_SIZE)
    return data + bytes([fill]) * fill

def unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding.  Raises ValueError when the padding is invalid."""
    if not data or len(data) % BLOCK_SIZE:
        raise ValueError("invalid padded length")
    fill = data[-1]
    if not 1 <= fill <= BLOCK_SIZE or data[-fill:] != bytes([fill]) * fill:
        raise ValueError("invalid padding bytes")
    return data[:-fill]
