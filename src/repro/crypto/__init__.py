"""Simulated DES substrate (see DESIGN.md §4, substitutions).

The paper's MetaSocket filters run DES 64-bit and DES 128-bit
encoders/decoders.  Cryptographic strength is irrelevant to the safety
protocol — what matters is that a packet encrypted under scheme X is
*garbage* unless a matching decoder is composed into the receiving chain.
We therefore implement a small but real 16-round Feistel block cipher
(:mod:`repro.crypto.feistel`) and register two schemes
(:mod:`repro.crypto.schemes`): ``des64`` (8-byte key) and ``des128``
(16-byte key), mirroring the paper's E1/E2 encoders.
"""

from repro.crypto.feistel import FeistelCipher
from repro.crypto.schemes import (
    DES128,
    DES64,
    Scheme,
    cipher_for,
    get_scheme,
    registered_schemes,
)

__all__ = [
    "FeistelCipher",
    "Scheme",
    "DES64",
    "DES128",
    "get_scheme",
    "cipher_for",
    "registered_schemes",
]
