"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows the paper's tables report;
this keeps the formatting in one place so every bench looks alike.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width table with a header rule, GitHub-markdown-ish."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [render_row(list(headers))]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)
