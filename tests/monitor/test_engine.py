"""Unit + integration tests for the decision engine."""

import pytest

from repro.apps.video import build_video_cluster
from repro.apps.video.system import paper_source, paper_target
from repro.core.model import Configuration
from repro.monitor.engine import DecisionEngine
from repro.monitor.rules import AdaptationRule, Threshold
from repro.monitor.sensors import GaugeSensor


def make_rule(name, sensor, target, priority=0, cooldown=0.0):
    return AdaptationRule(
        name=name,
        sensor=sensor,
        threshold=Threshold(trip=0.5),
        target=target,
        priority=priority,
        cooldown=cooldown,
    )


class TestEvaluate:
    def test_fires_and_requests(self):
        sensor = GaugeSensor("threat", 0.9)
        target = Configuration(["X"])
        requested = []
        engine = DecisionEngine([make_rule("r", sensor, target)])
        decision = engine.evaluate(0.0, Configuration(["Y"]), requested.append)
        assert decision is not None and decision.accepted
        assert requested == [target]

    def test_no_trip_no_decision(self):
        sensor = GaugeSensor("threat", 0.1)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])
        assert engine.evaluate(0.0, Configuration(["Y"]), lambda t: None) is None

    def test_busy_manager_defers(self):
        sensor = GaugeSensor("threat", 0.9)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])
        decision = engine.evaluate(
            0.0, Configuration(["Y"]), lambda t: None, busy=True
        )
        assert decision is not None and not decision.accepted
        assert decision.detail == "manager busy"

    def test_already_at_target_skipped(self):
        sensor = GaugeSensor("threat", 0.9)
        target = Configuration(["X"])
        engine = DecisionEngine([make_rule("r", sensor, target)])
        decision = engine.evaluate(0.0, target, lambda t: None)
        assert decision is not None and not decision.accepted

    def test_priority_wins(self):
        low = make_rule("low", GaugeSensor("a", 0.9), Configuration(["L"]), priority=1)
        high = make_rule("high", GaugeSensor("b", 0.9), Configuration(["H"]), priority=9)
        requested = []
        engine = DecisionEngine([low, high])
        engine.evaluate(0.0, Configuration(["Y"]), requested.append)
        assert requested == [Configuration(["H"])]

    def test_planner_error_recorded_not_raised(self):
        from repro.errors import NoSafePathError

        sensor = GaugeSensor("threat", 0.9)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])

        def failing_request(target):
            raise NoSafePathError("nope")

        decision = engine.evaluate(0.0, Configuration(["Y"]), failing_request)
        assert decision is not None and not decision.accepted
        assert "nope" in decision.detail

    def test_decisions_logged(self):
        sensor = GaugeSensor("threat", 0.9)
        engine = DecisionEngine([make_rule("r", sensor, Configuration(["X"]))])
        engine.evaluate(0.0, Configuration(["Y"]), lambda t: None)
        assert len(engine.decisions) == 1


class TestOnCluster:
    def test_threat_rise_triggers_hardening(self):
        """End-to-end RAPIDware loop: monitor → decide → safely adapt."""
        cluster = build_video_cluster(seed=6)
        threat = GaugeSensor("threat", 0.0)
        rule = make_rule("harden-to-128", threat, paper_target(), cooldown=50.0)
        engine = DecisionEngine([rule])
        engine.attach_to(cluster, period=10.0)
        cluster.sim.schedule(35.0, lambda: threat.set(0.9))
        cluster.sim.run(until=300.0)
        assert cluster.manager.outcome is not None
        assert cluster.manager.outcome.succeeded
        assert cluster.manager.committed == paper_target()
        accepted = [d for d in engine.decisions if d.accepted]
        assert len(accepted) == 1
        assert accepted[0].rule == "harden-to-128"
