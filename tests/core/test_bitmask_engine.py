"""Unit tests for the bitmask planning engine's plumbing.

Covers the pieces the property tests don't: the universe's mask codec,
the shared safety memo, restricted enumeration on the pruner, and the
planner's incremental caches.
"""

import pytest

from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_planner,
    video_universe,
)
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.sag import SafeAdaptationGraph
from repro.core.space import SafeConfigurationSpace
from repro.errors import NoSafePathError, UnknownComponentError


class TestMaskCodec:
    def test_mask_matches_bit_string(self):
        universe = video_universe()
        for config in universe.all_configurations():
            assert universe.mask_of(config) == int(universe.to_bits(config), 2)

    def test_from_mask_roundtrip(self):
        universe = video_universe()
        for mask in range(len(universe) ** 2):
            assert universe.mask_of(universe.from_mask(mask)) == mask

    def test_from_mask_interns(self):
        universe = video_universe()
        assert universe.from_mask(5) is universe.from_mask(5)

    def test_mask_of_unknown_member_raises(self):
        universe = video_universe()
        with pytest.raises(UnknownComponentError):
            universe.mask_of(Configuration(["Z9"]))

    def test_from_mask_out_of_range(self):
        from repro.errors import ConfigurationError

        universe = video_universe()
        with pytest.raises(ConfigurationError):
            universe.from_mask(1 << len(universe))

    def test_atom_bits_msb_first(self):
        universe = ComponentUniverse.from_names(["X", "Y", "Z"])
        assert universe.atom_bits == {"X": 4, "Y": 2, "Z": 1}
        assert universe.full_mask == 7


class TestSafetyMemo:
    def test_is_safe_mask_memoizes(self):
        space = SafeConfigurationSpace(video_universe(), video_invariants())
        mask = space.universe.mask_of(paper_source())
        assert space.is_safe_mask(mask) is True
        assert space.safe_memo[mask] is True

    def test_enumeration_populates_memo(self):
        space = SafeConfigurationSpace(video_universe(), video_invariants())
        safe = space.enumerate()
        for config in safe:
            assert space.safe_memo[space.universe.mask_of(config)] is True

    def test_is_safe_falls_back_for_foreign_members(self):
        space = SafeConfigurationSpace(video_universe(), video_invariants())
        # no mask encoding, but set evaluation still answers
        assert not space.is_safe(Configuration(["Z9", "E1"]))

    def test_enumerate_masks_aligns_with_enumerate(self):
        space = SafeConfigurationSpace(video_universe(), video_invariants())
        masks = space.enumerate_masks()
        assert masks == tuple(
            space.universe.mask_of(c) for c in space.enumerate()
        )


class TestRestrictedEnumeration:
    def test_pruner_matches_exhaustive_sweep(self):
        universe = video_universe()
        space = SafeConfigurationSpace(universe, video_invariants())
        base = paper_source()
        for free in (["D1", "D2", "D3"], ["E1", "E2"], list(universe.order)):
            got = space.enumerate_restricted(base, free)
            frozen = base.members - frozenset(free)
            expected = tuple(
                sorted(
                    (
                        c
                        for c in universe.all_configurations()
                        if space.is_safe(c)
                        and c.members - frozenset(free) == frozen
                        and all(
                            (m in c.members) == (m in base.members)
                            for m in universe.order
                            if m not in free
                        )
                    ),
                    key=universe.to_bits,
                )
            )
            assert got == expected, free

    def test_unsatisfiable_restriction_is_empty(self):
        universe = video_universe()
        space = SafeConfigurationSpace(universe, video_invariants())
        # freeze everything absent: no decoder can be selected
        assert space.enumerate_restricted(Configuration(), ["D4"]) == ()


class TestPlannerCaches:
    def test_plan_is_cached_per_endpoints(self):
        planner = video_planner()
        first = planner.plan(paper_source(), paper_target())
        second = planner.plan(paper_source(), paper_target())
        assert second is first

    def test_plan_k_is_cached(self):
        planner = video_planner()
        first = planner.plan_k(paper_source(), paper_target(), 3)
        second = planner.plan_k(paper_source(), paper_target(), 3)
        assert [p.action_ids for p in first] == [p.action_ids for p in second]
        assert second is not first  # fresh list, cached contents

    def test_no_path_is_cached_and_still_raises(self):
        universe = ComponentUniverse.from_names(["A", "B"])
        space_invariants = InvariantSet.of()
        from repro.core.actions import ActionLibrary, AdaptiveAction
        from repro.core.planner import AdaptationPlanner

        planner = AdaptationPlanner(
            universe,
            space_invariants,
            ActionLibrary([AdaptiveAction.insert("I1", "A", 1.0)]),
        )
        for _ in range(2):
            with pytest.raises(NoSafePathError):
                planner.plan(Configuration(["A"]), Configuration(["B"]))

    def test_reset_caches_clears_plans_and_sag(self):
        planner = video_planner()
        plan = planner.plan(paper_source(), paper_target())
        sag = planner.sag
        planner.reset_caches()
        assert planner.sag is not sag
        assert planner.plan(paper_source(), paper_target()) is not plan

    def test_lazy_plan_equals_sag_plan(self):
        planner = video_planner()
        eager = planner.plan(paper_source(), paper_target())
        lazy = planner.plan_lazy(paper_source(), paper_target())
        assert lazy.total_cost == eager.total_cost
        assert lazy.configurations[0] == paper_source()
        assert lazy.configurations[-1] == paper_target()


class TestSagFallback:
    def test_restrict_to_foreign_vertices_uses_setwise_build(self):
        """Caller-supplied vertices outside the universe still build."""
        space = SafeConfigurationSpace(video_universe(), video_invariants())
        foreign = Configuration(["Z9"])
        sag = SafeAdaptationGraph.build(
            space, video_actions(), restrict_to=[paper_source(), foreign]
        )
        assert sag.node_count == 2
        assert sag.edge_count == 0
