"""Streaming safety checking and online enforcement.

Unit coverage for the incremental CCS tracker and the streaming checker
(batch parity on crafted traces; the hypothesis suite covers random
ones), plus the headline behavior: enforcement aborts the unsafe
baselines *mid-run*, at the first violating record.
"""

import pytest

from repro.apps.video import VideoScenario
from repro.apps.video.scenario import VIDEO_CCS
from repro.apps.video.system import paper_target
from repro.baselines import LocalQuiescenceSwap, RestartSwap, TwoPhaseSwap, UnsafeSwap
from repro.ccs import CCSSpec, CCSTracker
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse
from repro.errors import SafetyViolationError
from repro.obs import ObservationBus
from repro.safety import SafetyChecker, StreamingSafetyChecker, check_safe
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    Trace,
)

SPEC = CCSSpec([("a",), ("a", "b"), ("a", "b", "c"), ("x", "y")])


class TestCCSTracker:
    def test_complete_segment(self):
        tracker = CCSTracker(SPEC)
        assert tracker.observe(1, "a", time=1.0) is None
        assert tracker.observe(1, "b", time=2.0) is None
        (verdict,) = tracker.verdicts()
        assert verdict.complete and not verdict.interrupted
        assert tracker.sequence(1) == ("a", "b")
        assert tracker.last_time(1) == 2.0
        assert tracker.completed == 1

    def test_interruption_is_detected_at_the_violating_action(self):
        tracker = CCSTracker(SPEC)
        assert tracker.observe(1, "x", time=1.0) is None  # open prefix
        verdict = tracker.observe(1, "c", time=2.0)  # leaves the prefix set
        assert verdict is not None and verdict.interrupted
        assert verdict.sequence == ("x", "c")
        # Dead is final: later actions never revive it, and the verdict
        # is only surfaced once (the enforcement hook fires once).
        assert tracker.observe(1, "y", time=3.0) is None
        (final,) = tracker.verdicts()
        assert final.interrupted and final.sequence == ("x", "c", "y")
        assert tracker.interrupted == 1

    def test_completed_segment_can_be_extended_and_rejudged(self):
        tracker = CCSTracker(SPEC)
        tracker.observe(1, "a")  # complete: ("a",)
        assert tracker.verdicts()[0].complete
        tracker.observe(1, "b")  # longer complete: ("a", "b")
        assert tracker.verdicts()[0].complete
        assert tracker.completed == 1
        verdict = tracker.observe(1, "a")  # ("a","b","a") — now dead
        assert verdict is not None and verdict.interrupted
        assert tracker.completed == 0 and tracker.interrupted == 1

    def test_completed_segments_store_no_action_list(self):
        tracker = CCSTracker(SPEC)
        for cid in range(100):
            tracker.observe(cid, "a")
            tracker.observe(cid, "b")
            tracker.observe(cid, "c")
        assert tracker.completed == 100
        assert all(
            state.actions is None for state in tracker._segments.values()
        )

    def test_matches_batch_judgement(self):
        comms = [
            CommRecord(time=float(i), cid=cid, action=action)
            for i, (cid, action) in enumerate(
                [(1, "a"), (2, "x"), (1, "b"), (2, "c"), (3, "a"), (2, "y")]
            )
        ]
        trace = Trace(comms)
        tracker = CCSTracker(SPEC)
        for record in comms:
            tracker.observe(record.cid, record.action, record.time)
        assert tracker.verdicts() == SPEC.judge_trace(trace)
        assert tracker.cids() == trace.cids()
        for cid in trace.cids():
            assert tracker.sequence(cid) == trace.comm_sequence(cid)


UNIVERSE = ComponentUniverse.from_names(
    ["A", "B", "C"], {"A": "p1", "B": "p1", "C": "p2"}
)
INVARIANTS = InvariantSet.of("A | B")


def crafted_unsafe_records():
    return [
        ConfigCommitted(time=0.0, configuration=frozenset({"A"})),
        CommRecord(time=1.0, cid=1, action="a"),
        ConfigCommitted(time=2.0, configuration=frozenset({"C"}), step_id="s1"),
        AdaptationApplied(
            time=3.0, process="p1", action_id="a1",
            removes=frozenset({"A"}), adds=frozenset({"C"}),
        ),
        CommRecord(time=4.0, cid=1, action="c"),
        CorruptionRecord(time=5.0, process="p2", detail="bad frame"),
        BlockRecord(time=6.0, process="p1", blocked=True),
        AdaptationApplied(
            time=7.0, process="p1", action_id="a2",
            removes=frozenset(), adds=frozenset({"B"}),
        ),
    ]


class TestStreamingChecker:
    @pytest.mark.parametrize("universe", [None, UNIVERSE])
    def test_matches_replay_on_crafted_unsafe_trace(self, universe):
        trace = Trace(crafted_unsafe_records())
        checker = SafetyChecker(INVARIANTS, ccs=SPEC, universe=universe)
        streamed = checker.check(trace)
        assert streamed == checker.check_replay(trace)
        assert [v.kind for v in streamed.violations] == [
            "dependency", "ccs", "corruption", "discipline"
        ]

    def test_mask_fast_path_and_ast_agree_on_details(self):
        trace = Trace(crafted_unsafe_records())
        with_mask = SafetyChecker(INVARIANTS, ccs=SPEC, universe=UNIVERSE)
        without = SafetyChecker(INVARIANTS, ccs=SPEC)
        assert with_mask.check(trace) == without.check(trace)

    def test_unknown_components_fall_back_to_ast(self):
        records = [
            ConfigCommitted(time=0.0, configuration=frozenset({"A", "ZZZ"})),
            ConfigCommitted(time=1.0, configuration=frozenset({"ZZZ"})),
        ]
        trace = Trace(records)
        checker = SafetyChecker(INVARIANTS, universe=UNIVERSE)
        report = checker.check(trace)
        assert report == checker.check_replay(trace)
        assert len(report.by_kind("dependency")) == 1

    def test_check_safe_accepts_universe(self):
        trace = Trace([ConfigCommitted(time=0.0, configuration=frozenset({"A"}))])
        assert check_safe(trace, INVARIANTS, universe=UNIVERSE).ok

    def test_first_violation_is_recorded_without_enforcement(self):
        stream = StreamingSafetyChecker(INVARIANTS, ccs=SPEC)
        for record in crafted_unsafe_records():
            stream.feed(record)
        assert stream.tripped
        first = stream.first_violation
        # First violating record in stream order: the t=2 bad commit.
        assert first.kind == "dependency" and first.time == 2.0
        # finish() is idempotent and inspectable mid-stream.
        assert stream.finish() == stream.finish()

    def test_discipline_disabled_skips_counting(self):
        trace = Trace(crafted_unsafe_records())
        checker = SafetyChecker(INVARIANTS, ccs=SPEC, check_discipline=False)
        report = checker.check(trace)
        assert report == checker.check_replay(trace)
        assert report.in_actions_checked == 0
        assert not report.by_kind("discipline")


class TestEnforcement:
    def test_raises_structured_error_at_the_violating_record(self):
        stream = StreamingSafetyChecker(INVARIANTS, enforce=True)
        stream.feed(ConfigCommitted(time=0.0, configuration=frozenset({"A"})))
        with pytest.raises(SafetyViolationError) as excinfo:
            stream.feed(
                ConfigCommitted(time=2.0, configuration=frozenset({"C"}), step_id="s1")
            )
        violation = excinfo.value.violation
        assert violation is not None
        assert violation.kind == "dependency" and violation.time == 2.0
        assert violation == stream.first_violation

    def test_tripwire_aborts_trace_append_but_keeps_evidence(self):
        stream = StreamingSafetyChecker(INVARIANTS, enforce=True)
        trace = Trace(bus=ObservationBus(stream))
        bad = ConfigCommitted(time=0.0, configuration=frozenset({"C"}))
        with pytest.raises(SafetyViolationError):
            trace.append(bad)
        assert trace.snapshot() == (bad,)

    def test_report_raise_if_unsafe_carries_structure(self):
        trace = Trace(crafted_unsafe_records())
        report = check_safe(trace, INVARIANTS, ccs=SPEC)
        with pytest.raises(SafetyViolationError) as excinfo:
            report.raise_if_unsafe()
        assert excinfo.value.violation == report.violations[0]


def enforced_scenario(seed=3):
    scenario = VideoScenario(seed=seed)
    stream = StreamingSafetyChecker(
        scenario.cluster.invariants,
        ccs=VIDEO_CCS,
        universe=scenario.cluster.universe,
        enforce=True,
    )
    scenario.cluster.trace.attach_bus(ObservationBus(stream), replay=True)
    return scenario, stream


class TestEnforcementOnBaselines:
    """--enforce semantics: unsafe baselines halt mid-run, safe ones don't."""

    def test_unsafe_swap_is_halted_at_first_violation(self):
        scenario, stream = enforced_scenario()
        UnsafeSwap(scenario.cluster, paper_target(), at_time=50.0).schedule()
        with pytest.raises(SafetyViolationError) as excinfo:
            scenario.cluster.sim.run(until=120.0)
        # Halted at the swap instant, not at the end of the run.
        assert scenario.cluster.sim.now == pytest.approx(50.0, abs=1.0)
        assert excinfo.value.violation == stream.first_violation

    def test_quiescence_swap_is_halted_mid_run(self):
        scenario, stream = enforced_scenario()
        LocalQuiescenceSwap(scenario.cluster, paper_target(), at_time=50.0).schedule()
        with pytest.raises(SafetyViolationError):
            scenario.cluster.sim.run(until=150.0)
        assert stream.tripped
        assert scenario.cluster.sim.now < 150.0

    def test_two_phase_swap_runs_untouched(self):
        scenario, stream = enforced_scenario()
        scenario.cluster.sim.run(until=50.0)
        TwoPhaseSwap(scenario.cluster, paper_target()).run()
        scenario.cluster.sim.run(until=scenario.cluster.sim.now + 60.0)
        assert not stream.tripped
        assert stream.finish().ok

    def test_restart_swap_runs_untouched(self):
        scenario, stream = enforced_scenario()
        RestartSwap(scenario.cluster, paper_target(), at_time=50.0).schedule()
        scenario.cluster.sim.run(until=150.0)
        assert not stream.tripped

    def test_safe_protocol_completes_under_enforcement(self):
        scenario, stream = enforced_scenario()
        outcome = scenario.run()
        assert outcome.succeeded
        assert not stream.tripped
        assert stream.finish().ok
