"""The observation bus: streaming trace consumption for every backend.

Historically every consumer of an execution :class:`~repro.trace.Trace`
— the safety checker, CCS extraction, the ptLTL monitor, the timeline
renderer, the decision engine — replayed or polled the in-memory record
list through its own ad-hoc wiring, which meant an execution could only
be judged *after it ended*.  This module is the shared streaming
substrate instead: an :class:`ObservationBus` that receives every
:class:`~repro.trace.TraceRecord` at emission time (a
:class:`~repro.trace.Trace` with an attached bus publishes from
``append``, so the simulator, the threaded runtime, the asyncio backend,
the application adapters, and the baseline strategies all feed it
without any per-emitter wiring) and a tiny :class:`Observer` contract —
``feed(record)`` per record, ``finish()`` for the report — that the
incremental consumers implement:

* :class:`repro.safety.StreamingSafetyChecker` — the paper's §3 safety
  definition checked online, with optional enforcement (first violation
  raises mid-run);
* :class:`repro.ltl.TemporalObserver` — ptLTL / safe-state monitoring
  over published records;
* :class:`repro.render.EventStreamSink` — live tail of the event log;
* :class:`repro.monitor.engine.DecisionEngine.attach_to_bus` — rule
  evaluation driven by manager milestones instead of periodic polling;
* :class:`MetricsObserver` (here) — rolling counters for the
  ``--metrics`` surfaces and the observer-overhead benchmark.

Observers see records in trace order: publication happens under the
trace's append lock, so even on the threaded backend the stream is a
single serialized sequence.  An observer that raises aborts the
publishing ``append`` — that is the *enforcement tripwire* semantic, and
it is deliberate: the record that proves the violation is already in the
trace when the exception surfaces in the emitting backend.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    NoteRecord,
    RollbackRecord,
    TraceRecord,
)


class Observer:
    """Contract for incremental trace consumers.

    Subclasses override :meth:`feed` (called once per published record,
    in trace order) and :meth:`finish` (called to produce the terminal
    report; must be safe to call more than once and mid-stream, so a
    live run can be inspected without stopping it).
    """

    @property
    def name(self) -> str:
        """Identifier used in bus statistics and reports."""
        return type(self).__name__

    def feed(self, record: TraceRecord) -> None:
        """Consume one record (trace order; may raise to trip the run)."""

    def finish(self) -> object:
        """Report over everything fed so far (idempotent)."""
        return None


class CallbackObserver(Observer):
    """Adapter: wrap a plain callable as an observer."""

    def __init__(self, callback: Callable[[TraceRecord], None], name: str = ""):
        self._callback = callback
        self._name = name or getattr(callback, "__name__", "callback")

    @property
    def name(self) -> str:
        return self._name

    def feed(self, record: TraceRecord) -> None:
        self._callback(record)


@dataclass
class ObserverStats:
    """Per-observer bus accounting (drives the checker-latency metric)."""

    records: int = 0
    seconds: float = 0.0

    @property
    def mean_us(self) -> float:
        """Mean per-record feed latency in microseconds."""
        if not self.records:
            return 0.0
        return self.seconds / self.records * 1e6


class ObservationBus:
    """Fan-out of trace records to registered observers, in order.

    Args:
        observers: initial subscribers.
        timed: when True (default) every ``feed`` call is timed with
            ``time.perf_counter`` and accumulated into :meth:`stats` —
            the per-observer overhead record the metrics surfaces and
            the observer-overhead benchmark report.
    """

    def __init__(self, *observers: Observer, timed: bool = True):
        self._observers: Tuple[Observer, ...] = ()
        self._stats: Dict[str, ObserverStats] = {}
        self.timed = timed
        self.records_published = 0
        for observer in observers:
            self.subscribe(observer)

    @property
    def observers(self) -> Tuple[Observer, ...]:
        return self._observers

    def subscribe(self, observer: Observer) -> Observer:
        """Register *observer*; returns it (handy for inline creation)."""
        if not isinstance(observer, Observer):
            raise TypeError(
                f"expected an Observer, got {type(observer).__name__} "
                "(wrap plain callables in CallbackObserver)"
            )
        self._observers = self._observers + (observer,)
        self._stats.setdefault(observer.name, ObserverStats())
        return observer

    def unsubscribe(self, observer: Observer) -> None:
        self._observers = tuple(o for o in self._observers if o is not observer)

    def publish(self, record: TraceRecord) -> None:
        """Feed *record* to every observer, in subscription order.

        Called under the publishing trace's lock, so observers may keep
        plain (unlocked) state.  An observer exception propagates to the
        emitter — the enforcement tripwire path.
        """
        self.records_published += 1
        if not self.timed:
            for observer in self._observers:
                observer.feed(record)
            return
        for observer in self._observers:
            t0 = time.perf_counter()
            try:
                observer.feed(record)
            finally:
                stats = self._stats[observer.name]
                stats.records += 1
                stats.seconds += time.perf_counter() - t0

    def finish(self) -> Dict[str, object]:
        """Collect every observer's report, keyed by observer name."""
        return {observer.name: observer.finish() for observer in self._observers}

    def stats(self) -> Dict[str, ObserverStats]:
        """Per-observer feed accounting (stays zeroed when ``timed=False``)."""
        return dict(self._stats)


@dataclass
class MetricsReport:
    """Rolling counters kept by :class:`MetricsObserver`."""

    records: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    commits: int = 0
    blocks: int = 0
    resumes: int = 0
    in_actions: int = 0
    rollbacks: int = 0
    corruption: int = 0
    comm_actions: int = 0
    notes: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    @property
    def span(self) -> float:
        if self.first_time is None or self.last_time is None:
            return 0.0
        return self.last_time - self.first_time

    def to_json(self) -> Dict[str, object]:
        """JSON-serializable form (``BENCH_obs.json`` / ``--metrics``)."""
        return {
            "records": self.records,
            "by_kind": dict(sorted(self.by_kind.items())),
            "commits": self.commits,
            "blocks": self.blocks,
            "resumes": self.resumes,
            "in_actions": self.in_actions,
            "rollbacks": self.rollbacks,
            "corruption": self.corruption,
            "comm_actions": self.comm_actions,
            "notes": self.notes,
            "span": self.span,
        }

    def summary(self) -> str:
        """Human-readable multi-line summary (CLI ``--metrics``)."""
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"records: {self.records} over {self.span:g} time units\n"
            f"by kind: {kinds or '(none)'}\n"
            f"commits: {self.commits}, in-actions: {self.in_actions}, "
            f"rollbacks: {self.rollbacks}\n"
            f"blocks: {self.blocks}, resumes: {self.resumes}, "
            f"comm actions: {self.comm_actions}, corruption: {self.corruption}"
        )


class MetricsObserver(Observer):
    """Rolling execution counters: records by kind, commits, blocks, ...

    The production-observability counterpart of the safety checker: it
    never judges, only counts, and its :class:`MetricsReport` is what
    ``repro simulate --metrics`` / ``repro trace check --metrics`` print
    and the observer-overhead benchmark dumps to ``BENCH_obs.json``.
    """

    def __init__(self) -> None:
        self._by_kind: Counter = Counter()
        self._report = MetricsReport()

    def feed(self, record: TraceRecord) -> None:
        report = self._report
        report.records += 1
        self._by_kind[type(record).__name__] += 1
        if report.first_time is None:
            report.first_time = record.time
        report.last_time = record.time
        if isinstance(record, ConfigCommitted):
            report.commits += 1
        elif isinstance(record, BlockRecord):
            if record.blocked:
                report.blocks += 1
            else:
                report.resumes += 1
        elif isinstance(record, AdaptationApplied):
            report.in_actions += 1
        elif isinstance(record, RollbackRecord):
            report.rollbacks += 1
        elif isinstance(record, CorruptionRecord):
            report.corruption += 1
        elif isinstance(record, CommRecord):
            report.comm_actions += 1
        elif isinstance(record, NoteRecord):
            report.notes += 1

    def finish(self) -> MetricsReport:
        self._report.by_kind = dict(self._by_kind)
        return self._report
