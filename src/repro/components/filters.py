"""Recomposable filter pipeline (the inside of a MetaSocket, paper §2/§5).

A :class:`Filter` transforms packets; a :class:`FilterChain` holds an
ordered sequence of filters and supports runtime insertion, removal, and
replacement — exactly the MetaSocket adaptations of the paper ("MetaSocket
behavior can be adapted through the insertion and removal of filters").
Filters may absorb packets (return zero) or fan out (return several, e.g.
an FEC encoder emitting parity packets).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.components.base import AdaptiveComponent, refraction, transmutation
from repro.errors import ModelError


class Filter(AdaptiveComponent):
    """Packet transformer. Subclasses override :meth:`process`."""

    def process(self, packet: Any) -> List[Any]:
        """Transform one packet into zero or more packets."""
        raise NotImplementedError

    @refraction
    def filter_info(self) -> Mapping[str, Any]:
        return {"name": self.name, "type": type(self).__name__}


class PassthroughFilter(Filter):
    """Identity filter (useful as a placeholder and in tests)."""

    def process(self, packet: Any) -> List[Any]:
        return [packet]


class FilterChain(AdaptiveComponent):
    """Ordered, runtime-recomposable sequence of filters.

    The chain itself is an adaptive component: its transmutations
    (``insert_filter`` / ``remove_filter`` / ``replace_filter``) are what
    the agents' in-actions ultimately call.
    """

    def __init__(self, name: str, filters: Iterable[Filter] = ()):
        super().__init__(name)
        self._filters: List[Filter] = list(filters)
        self.packets_in = 0
        self.packets_out = 0

    # -- invocations --------------------------------------------------------------
    def push(self, packet: Any) -> List[Any]:
        """Run *packet* through every filter in order."""
        self.packets_in += 1
        current = [packet]
        for filt in self._filters:
            produced: List[Any] = []
            for item in current:
                produced.extend(filt.process(item))
            current = produced
            if not current:
                break
        self.packets_out += len(current)
        return current

    def push_many(self, packets: Iterable[Any]) -> List[Any]:
        out: List[Any] = []
        for packet in packets:
            out.extend(self.push(packet))
        return out

    # -- structure queries -----------------------------------------------------------
    @property
    def filters(self) -> Tuple[Filter, ...]:
        return tuple(self._filters)

    def filter_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self._filters)

    def index_of(self, name: str) -> int:
        for index, filt in enumerate(self._filters):
            if filt.name == name:
                return index
        raise ModelError(f"chain {self.name}: no filter named {name!r}")

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self._filters)

    def __len__(self) -> int:
        return len(self._filters)

    # -- refractions ------------------------------------------------------------------
    @refraction
    def chain_status(self) -> Mapping[str, Any]:
        return {
            "name": self.name,
            "filters": self.filter_names(),
            "packets_in": self.packets_in,
            "packets_out": self.packets_out,
        }

    # -- transmutations ---------------------------------------------------------------
    @transmutation
    def insert_filter(self, filt: Filter, index: Optional[int] = None) -> None:
        """Insert *filt* at *index* (append by default)."""
        if filt.name in self:
            raise ModelError(f"chain {self.name}: filter {filt.name!r} already present")
        if index is None:
            self._filters.append(filt)
        else:
            self._filters.insert(index, filt)

    @transmutation
    def remove_filter(self, name: str) -> Filter:
        """Remove and return the filter named *name*."""
        return self._filters.pop(self.index_of(name))

    @transmutation
    def replace_filter(self, name: str, replacement: Filter) -> Filter:
        """Swap the filter named *name* for *replacement*, preserving position."""
        index = self.index_of(name)
        if replacement.name != name and replacement.name in self:
            raise ModelError(
                f"chain {self.name}: filter {replacement.name!r} already present"
            )
        old = self._filters[index]
        self._filters[index] = replacement
        return old
