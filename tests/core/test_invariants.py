"""Unit tests for structural/dependency invariants."""

import pytest

from repro.core.invariants import (
    DependencyInvariant,
    Invariant,
    InvariantSet,
    StructuralInvariant,
)
from repro.core.model import Configuration
from repro.errors import ModelError
from repro.expr import Atom, exactly_one


class TestInvariant:
    def test_from_string(self):
        inv = Invariant("A & B")
        assert inv.holds({"A", "B"})
        assert not inv.holds({"A"})

    def test_from_expr(self):
        inv = Invariant(Atom("A"))
        assert inv.holds({"A"})

    def test_accepts_configuration_objects(self):
        inv = Invariant("A")
        assert inv.holds(Configuration(["A"]))

    def test_default_name_is_rendered_expr(self):
        assert Invariant("A & B").name == "A & B"

    def test_explicit_name(self):
        assert Invariant("A", name="presence").name == "presence"

    def test_equality_is_structural(self):
        assert Invariant("A & B") == Invariant("A & B")
        assert Invariant("A & B") != Invariant("B & A")

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Invariant(42)  # type: ignore[arg-type]


class TestDependencyInvariant:
    def test_single_string_form(self):
        inv = DependencyInvariant("E1 -> (D1 | D2) & D4")
        assert inv.holds({"D4", "D1", "E1"})
        assert inv.holds({"D3"})  # vacuous
        assert not inv.holds({"E1"})

    def test_two_part_form(self):
        inv = DependencyInvariant("E1", "(D1 | D2) & D4")
        assert inv.holds({"E1", "D2", "D4"})

    def test_accessors(self):
        inv = DependencyInvariant("A -> B")
        assert inv.depender == Atom("A")
        assert inv.condition == Atom("B")

    def test_non_implication_rejected(self):
        with pytest.raises(ModelError):
            DependencyInvariant("A & B")


class TestInvariantSet:
    @pytest.fixture
    def invset(self):
        return InvariantSet(
            [
                StructuralInvariant(exactly_one("E1", "E2"), name="security"),
                DependencyInvariant("E1 -> D1"),
            ]
        )

    def test_all_hold(self, invset):
        assert invset.all_hold({"E1", "D1"})
        assert invset.all_hold({"E2"})
        assert not invset.all_hold({"E1"})
        assert not invset.all_hold(set())  # no encoder

    def test_violated_reports_in_order(self, invset):
        broken = invset.violated({"E1", "E2", "D1"})
        assert [inv.name for inv in broken] == ["security"]
        broken = invset.violated(set())
        assert len(broken) == 1

    def test_explain(self, invset):
        assert "safe configuration" in invset.explain({"E2"})
        assert "violates" in invset.explain({"E1"})

    def test_atoms(self, invset):
        assert invset.atoms() == frozenset({"E1", "E2", "D1"})

    def test_of_constructor_mixed(self):
        s = InvariantSet.of("A", Invariant("B"), Atom("C"))
        assert len(s) == 3
        assert s.all_hold({"A", "B", "C"})

    def test_extended(self, invset):
        bigger = invset.extended(Invariant("D9"))
        assert len(bigger) == 3
        assert len(invset) == 2  # original untouched

    def test_indexable_iterable(self, invset):
        assert invset[0].name == "security"
        assert len(list(invset)) == 2

    def test_type_checked(self):
        with pytest.raises(TypeError):
            InvariantSet(["not an invariant"])  # type: ignore[list-item]


class TestPaperInvariants:
    def test_table1_configs_all_safe(self, invariants, universe, table1_bits):
        for bits in table1_bits:
            config = universe.from_bits(bits)
            assert invariants.all_hold(config), bits

    def test_counterexamples_unsafe(self, invariants, universe):
        # two decoders on the handheld
        assert not invariants.all_hold(frozenset({"D1", "D2", "D4", "E1"}))
        # no encoder at all
        assert not invariants.all_hold(frozenset({"D1", "D4"}))
        # E2 without D5
        assert not invariants.all_hold(frozenset({"D2", "D4", "E2"}))

    def test_exactly_eight_safe_configurations(self, invariants, universe):
        count = sum(
            1 for config in universe.all_configurations()
            if invariants.all_hold(config)
        )
        assert count == 8
