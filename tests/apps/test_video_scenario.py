"""Integration tests: the full §5.2 video walk-through on the simulator."""

import pytest

from repro.apps.video import VideoScenario, build_video_cluster
from repro.apps.video.system import paper_source, paper_target
from repro.sim.net import BernoulliLoss, UniformDelay
from repro.trace import BlockRecord, CommRecord


class TestPaperWalkthrough:
    @pytest.fixture(scope="class")
    def finished(self):
        scenario = VideoScenario(seed=1)
        outcome = scenario.run()
        return scenario, outcome

    def test_adaptation_completes_in_five_steps(self, finished):
        _, outcome = finished
        assert outcome.succeeded
        assert outcome.steps_committed == 5
        assert outcome.configuration == paper_target()

    def test_zero_corrupted_packets(self, finished):
        scenario, _ = finished
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0
        assert stats["laptop_corrupt"] == 0
        assert stats["handheld_ok"] > 0

    def test_stream_keeps_flowing_through_adaptation(self, finished):
        scenario, outcome = finished
        # frames were sent before, during, and after the adaptation window
        send_times = [
            r.time for r in scenario.cluster.trace.of_type(CommRecord)
            if r.action == "send"
        ]
        assert min(send_times) < outcome.started_at
        assert max(send_times) > outcome.finished_at

    def test_safety_report_clean(self, finished):
        scenario, _ = finished
        report = scenario.safety_report()
        report.raise_if_unsafe()
        assert report.segments_complete > 100

    def test_server_never_blocked_on_map(self, finished):
        # The MAP avoids composite actions, so the stream source never
        # stops: server blocking is limited to its own A1 swap (zero-length
        # quiesce in the simulator — block and resume at the same instant).
        scenario, _ = finished
        server_blocks = [
            r for r in scenario.cluster.trace.of_type(BlockRecord)
            if r.process == "server"
        ]
        blocked_spans = []
        start = None
        for record in server_blocks:
            if record.blocked:
                start = record.time
            elif start is not None:
                blocked_spans.append(record.time - start)
                start = None
        assert sum(blocked_spans) == 0.0

    def test_all_packets_eventually_decoded(self, finished):
        scenario, _ = finished
        stats = scenario.stream_stats()
        # everything received was decoded OK (in-flight tail may be undelivered)
        assert stats["handheld_ok"] == stats["handheld_received"]
        assert stats["laptop_ok"] == stats["laptop_received"]


class TestVariations:
    def test_lossy_control_plane_still_safe(self):
        scenario = VideoScenario(
            seed=9,
            control_loss=BernoulliLoss(0.2),
            control_delay=UniformDelay(0.5, 2.0),
        )
        outcome = scenario.run()
        assert outcome.succeeded
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0

    def test_deterministic_replay(self):
        a = VideoScenario(seed=5)
        b = VideoScenario(seed=5)
        out_a, out_b = a.run(), b.run()
        assert out_a.finished_at == out_b.finished_at
        assert a.stream_stats() == b.stream_stats()

    def test_single_composite_step_also_safe_but_blocks_server(self, planner):
        # Ablation: run the A14 triple instead of the MAP.
        from repro.apps.video.scenario import VideoScenario

        scenario = VideoScenario(seed=2)
        cluster = scenario.cluster
        cluster.sim.run(until=50.0)
        plans = cluster.planner.plan_k(paper_source(), paper_target(), 20)
        a14 = next(p for p in plans if p.action_ids == ("A14",))
        outcome = cluster.run_plan(a14)
        cluster.sim.run(until=cluster.sim.now + 60.0)
        assert outcome.succeeded
        scenario.safety_report().raise_if_unsafe()
        # the server WAS blocked for a real interval this time (drain wait)
        server_blocks = [
            r for r in cluster.trace.of_type(BlockRecord) if r.process == "server"
        ]
        times = {}
        total = 0.0
        start = None
        for record in server_blocks:
            if record.blocked and start is None:
                start = record.time
            elif not record.blocked and start is not None:
                total += record.time - start
                start = None
        assert total > 0.0

    def test_adaptation_from_intermediate_config(self):
        start = paper_source().apply_delta(frozenset({"D1"}), frozenset({"D2"}))
        scenario = VideoScenario(cluster=build_video_cluster(seed=3, initial=start))
        outcome = scenario.run()
        assert outcome.succeeded
        assert outcome.steps_committed == 4  # A2 already done
        scenario.safety_report().raise_if_unsafe()

    def test_reverse_adaptation_impossible(self):
        # From the 128-bit config there is no safe path back (no reverse
        # actions in Table 2) — the planner must say so, not hang.
        from repro.errors import NoSafePathError

        scenario = VideoScenario(cluster=build_video_cluster(seed=4, initial=paper_target()))
        with pytest.raises(NoSafePathError):
            scenario.cluster.manager.request_adaptation(paper_source())
