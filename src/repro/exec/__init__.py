"""Unified execution substrate: one effect-interpreter core, N backends.

The sans-io protocol machines (:mod:`repro.protocol`) are pure; this
package is the single place their effects are interpreted.  A deployment
backend supplies three services — :class:`Clock`, :class:`Transport`,
:class:`TimerService` (see :mod:`repro.exec.substrate`) — plus its own
receive-loop wiring, and reuses the shared :class:`AgentRuntime` /
:class:`ManagerRuntime` for everything else: effect interpretation,
trace emission, timer bookkeeping, and the §4.4 replan cascade.

Shipped backends:

* :mod:`repro.sim.cluster` — deterministic discrete-event simulation;
* :mod:`repro.runtime` — threads + in-memory queues (real hot swaps);
* :mod:`repro.exec.aio` — coroutines on one asyncio event loop.

Applications implement :class:`AppAdapter` once and run on any backend
(see :mod:`repro.exec.app` for what "portable" requires).
"""

from repro.exec.app import AppAdapter, QuiescentAdapter, StuckAdapter
from repro.exec.runtime import (
    AdaptationOutcome,
    AgentRuntime,
    ManagerRuntime,
    resolve_replan,
)
from repro.exec.substrate import (
    STOP,
    Clock,
    NullLock,
    ThreadTimerService,
    TimerService,
    Transport,
    WallClock,
)

__all__ = [
    "AppAdapter",
    "QuiescentAdapter",
    "StuckAdapter",
    "AdaptationOutcome",
    "AgentRuntime",
    "ManagerRuntime",
    "resolve_replan",
    "Clock",
    "Transport",
    "TimerService",
    "NullLock",
    "WallClock",
    "ThreadTimerService",
    "STOP",
]
