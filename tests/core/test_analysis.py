"""Tests for dependency impact analysis."""

import pytest

from repro.core.analysis import (
    affected_components,
    blast_radius,
    impact_report,
    invariants_at_risk,
)
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse


class TestInvariantsAtRisk:
    def test_only_touching_invariants_flagged(self, invariants, actions):
        at_risk = invariants_at_risk(invariants, actions.get("A1"))  # E1→E2
        names = {inv.name for inv in at_risk}
        assert "security constraint" in names
        assert any("E1" in n or "E2" in n for n in names)
        assert "resource constraint" not in names  # only decoders

    def test_decoder_swap(self, invariants, actions):
        at_risk = invariants_at_risk(invariants, actions.get("A2"))  # D1→D2
        names = {inv.name for inv in at_risk}
        assert "resource constraint" in names
        assert "security constraint" not in names

    def test_unrelated_action_risks_nothing(self):
        invariants = InvariantSet.of("A -> B")
        from repro.core.actions import AdaptiveAction

        action = AdaptiveAction.insert("x", "Z", 1)
        assert invariants_at_risk(invariants, action) == ()


class TestAffectedClosure:
    def test_transitive_coupling(self):
        # A—B coupled by one invariant, B—C by another; touching A reaches C.
        invariants = InvariantSet.of("A -> B", "B -> C")
        from repro.core.actions import AdaptiveAction

        closure = affected_components(invariants, AdaptiveAction.remove("r", "A", 1))
        assert closure == frozenset({"A", "B", "C"})

    def test_disconnected_components_excluded(self):
        invariants = InvariantSet.of("A -> B", "X -> Y")
        from repro.core.actions import AdaptiveAction

        closure = affected_components(invariants, AdaptiveAction.remove("r", "A", 1))
        assert "X" not in closure and "Y" not in closure

    def test_video_system_is_fully_coupled(self, invariants, actions):
        # the §5 invariants couple all seven components
        closure = affected_components(invariants, actions.get("A2"))
        assert closure >= {"D1", "D2", "D3", "E1", "E2", "D4", "D5"}


class TestBlastRadius:
    def test_single_process_action_small_radius_in_toy(self):
        universe = ComponentUniverse.from_names(
            ["A", "B", "X"], {"A": "p1", "B": "p1", "X": "p2"}
        )
        invariants = InvariantSet.of("A -> B")
        from repro.core.actions import AdaptiveAction

        radius = blast_radius(universe, invariants, AdaptiveAction.remove("r", "A", 1))
        assert radius == frozenset({"p1"})

    def test_video_blast_radius_spans_all_processes(self, universe, invariants, actions):
        radius = blast_radius(universe, invariants, actions.get("A2"))
        assert radius == frozenset({"server", "handheld", "laptop"})


class TestReport:
    def test_report_contents(self, universe, invariants, actions):
        text = impact_report(universe, invariants, actions.get("A16"))
        assert "action A16" in text
        assert "-D4" in text
        assert "participants" in text and "laptop" in text
        assert "blast radius" in text
