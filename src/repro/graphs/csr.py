"""CSR-compiled graph kernel: the amortized query engine over a frozen graph.

A :class:`Digraph` answers one shortest-path query fine, but serving many
``(source, target)`` requests against one Safe Adaptation Graph pays dict
hashing and node interning on every call.  :class:`CSRGraph` compiles a
*frozen* digraph once into int-indexed compressed-sparse-row arrays —
``offsets``/``targets``/``weights`` plus a reverse CSR for inbound edges —
so every search runs on machine scalars and array indexing.

Kernels provided:

* :func:`csr_dijkstra` — scalar-heap Dijkstra over node indices, with the
  **same deterministic tie-break** as :func:`repro.graphs.dijkstra.dijkstra`
  (cost, then hop count, then relaxation order): the property suite pins
  distances *and* predecessor paths to the dict-graph reference.
* :meth:`CSRGraph.shortest_path_tree` — a single-source shortest-path
  *tree* (:class:`ShortestPathTree`); each subsequent ``path_to(target)``
  is O(path length).  This is what makes batched multi-source MAP solving
  amortized: one tree serves every request that shares its source.
* :func:`bidirectional_shortest_path` — point-to-point search expanding
  forward and reverse frontiers alternately; settles roughly the union of
  two half-radius balls instead of one full ball.  Costs match Dijkstra
  exactly; the concrete path may differ between equal-cost optima.
* :func:`k_shortest_paths_csr` — Yen's algorithm with per-query edge/node
  ban sets instead of pruned graph copies; output is identical to
  :func:`repro.graphs.yen.k_shortest_paths`.

Optional ``banned_nodes``/``banned_edges`` sets on the Dijkstra kernel
subtract vertices and ``(source, label)`` arcs without copying the graph —
the CSR replacement for :meth:`Digraph.subgraph_without`.
"""

from __future__ import annotations

import heapq
from array import array
from typing import (
    AbstractSet,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    TypeVar,
)

from repro.graphs.digraph import Digraph, Edge
from repro.graphs.dijkstra import Path

N = TypeVar("N", bound=Hashable)
L = TypeVar("L", bound=Hashable)

_INF = float("inf")


class CSRGraph(Generic[N, L]):
    """A frozen digraph compiled to compressed-sparse-row arrays.

    Node objects are interned once at compile time; all kernels run over
    dense int indices.  Per-source edge order preserves the digraph's
    insertion order, which is what keeps every tie-break bit-identical to
    the dict-graph algorithms.
    """

    __slots__ = (
        "nodes",
        "index_of",
        "offsets",
        "targets",
        "weights",
        "edge_objects",
        "roffsets",
        "redges",
        "_label_cache",
    )

    def __init__(
        self,
        nodes: Tuple[N, ...],
        index_of: Dict[N, int],
        offsets: array,
        targets: array,
        weights: array,
        edge_objects: Tuple[Edge[N, L], ...],
    ):
        self.nodes = nodes
        self.index_of = index_of
        self.offsets = offsets
        self.targets = targets
        self.weights = weights
        self.edge_objects = edge_objects
        # reverse CSR: for each node, the ids of its inbound edges
        n = len(nodes)
        indegree = array("q", bytes(8 * (n + 1)))
        for edge_id in range(len(edge_objects)):
            indegree[targets[edge_id] + 1] += 1
        roffsets = array("q", indegree)
        for i in range(1, n + 1):
            roffsets[i] += roffsets[i - 1]
        redges = array("q", bytes(8 * len(edge_objects)))
        cursor = array("q", roffsets[:n])
        for source_index in range(n):
            for edge_id in range(offsets[source_index], offsets[source_index + 1]):
                slot = cursor[targets[edge_id]]
                redges[slot] = edge_id
                cursor[targets[edge_id]] += 1
        self.roffsets = roffsets
        self.redges = redges
        self._label_cache: Dict[Tuple[int, L], Tuple[int, ...]] = {}

    @classmethod
    def from_digraph(cls, graph: Digraph[N, L]) -> "CSRGraph[N, L]":
        """Compile *graph*; node indices follow its insertion order."""
        nodes = tuple(graph.nodes())
        index_of = {node: i for i, node in enumerate(nodes)}
        offsets = array("q", [0])
        targets = array("q")
        weights = array("d")
        edge_objects: List[Edge[N, L]] = []
        for node in nodes:
            for edge in graph.adjacency(node):
                targets.append(index_of[edge.target])
                weights.append(edge.weight)
                edge_objects.append(edge)
            offsets.append(len(edge_objects))
        return cls(nodes, index_of, offsets, targets, weights, tuple(edge_objects))

    # -- structure -------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edge_objects)

    def __contains__(self, node: N) -> bool:
        return node in self.index_of

    def edge_source_index(self, edge_id: int) -> int:
        return self.index_of[self.edge_objects[edge_id].source]

    def edges_labelled(self, source_index: int, label: L) -> Tuple[int, ...]:
        """Ids of the parallel arcs from *source_index* carrying *label*.

        Cached: Yen bans the same ``(source, label)`` pairs across many
        spur queries.
        """
        key = (source_index, label)
        cached = self._label_cache.get(key)
        if cached is None:
            cached = tuple(
                edge_id
                for edge_id in range(
                    self.offsets[source_index], self.offsets[source_index + 1]
                )
                if self.edge_objects[edge_id].label == label
            )
            self._label_cache[key] = cached
        return cached

    # -- query front ends --------------------------------------------------------
    def shortest_path_tree(self, source: N) -> "ShortestPathTree[N, L]":
        """Single-source shortest-path tree rooted at *source*."""
        source_index = self.index_of[source]
        dist, hops, pred = csr_dijkstra(self, source_index)
        return ShortestPathTree(self, source_index, dist, hops, pred)

    def shortest_path(self, source: N, target: N) -> Optional[Path[N, L]]:
        """Point-to-point query with early termination at *target*.

        Identical output to :func:`repro.graphs.dijkstra.shortest_path`
        on the uncompiled graph.
        """
        source_index = self.index_of[source]
        target_index = self.index_of[target]
        if source_index == target_index:
            return Path(nodes=(source,), edges=(), cost=0.0)
        dist, _, pred = csr_dijkstra(self, source_index, target=target_index)
        return reconstruct_path(self, source_index, target_index, dist, pred)


def csr_dijkstra(
    csr: CSRGraph[N, L],
    source_index: int,
    target: Optional[int] = None,
    banned_nodes: Optional[AbstractSet[int]] = None,
    banned_edges: Optional[AbstractSet[int]] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Scalar-heap Dijkstra over node indices.

    Returns ``(dist, hops, pred)`` arrays indexed by node: minimal cost
    (``inf`` if unreached), hop count of the chosen minimal path, and the
    edge id of its final edge (-1 at the source and unreached nodes).

    The relaxation rule replicates :func:`repro.graphs.dijkstra.dijkstra`
    exactly — prefer lower cost, then fewer hops, then earlier relaxation
    order — so predecessor trees match the dict-graph reference node for
    node.  *banned_nodes*/*banned_edges* subtract vertices and edge ids
    without touching the arrays (Yen's spur queries).
    """
    n = csr.node_count
    dist = [_INF] * n
    hops = [0] * n
    pred = [-1] * n
    settled = bytearray(n)
    offsets = csr.offsets
    targets = csr.targets
    weights = csr.weights
    dist[source_index] = 0.0
    counter = 0
    heap: list = [(0.0, 0, counter, source_index)]
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        cost, nhops, _, index = pop(heap)
        if settled[index]:
            continue
        settled[index] = 1
        if target is not None and index == target:
            break
        for edge_id in range(offsets[index], offsets[index + 1]):
            if banned_edges is not None and edge_id in banned_edges:
                continue
            neighbour = targets[edge_id]
            if settled[neighbour]:
                continue
            if banned_nodes is not None and neighbour in banned_nodes:
                continue
            candidate = cost + weights[edge_id]
            candidate_hops = nhops + 1
            best = dist[neighbour]
            if candidate < best or (
                candidate == best and candidate_hops < hops[neighbour]
            ):
                dist[neighbour] = candidate
                hops[neighbour] = candidate_hops
                pred[neighbour] = edge_id
                counter += 1
                push(heap, (candidate, candidate_hops, counter, neighbour))
    return dist, hops, pred


def reconstruct_path(
    csr: CSRGraph[N, L],
    source_index: int,
    target_index: int,
    dist: Sequence[float],
    pred: Sequence[int],
) -> Optional[Path[N, L]]:
    """Walk the predecessor array back from *target_index* (or ``None``)."""
    if dist[target_index] == _INF:
        return None
    if source_index == target_index:
        return Path(nodes=(csr.nodes[source_index],), edges=(), cost=0.0)
    edges: List[Edge[N, L]] = []
    index = target_index
    while index != source_index:
        edge_id = pred[index]
        edge = csr.edge_objects[edge_id]
        edges.append(edge)
        index = csr.edge_source_index(edge_id)
    edges.reverse()
    nodes = (csr.nodes[source_index],) + tuple(edge.target for edge in edges)
    return Path(nodes=nodes, edges=tuple(edges), cost=dist[target_index])


class ShortestPathTree(Generic[N, L]):
    """A frozen single-source Dijkstra result; path extraction is O(|path|).

    One tree answers every ``(source, *)`` request — the unit of
    amortization behind :meth:`AdaptationPlanner.plan_many
    <repro.core.planner.AdaptationPlanner.plan_many>` and the §4.4 replan
    cascade.
    """

    __slots__ = ("csr", "source_index", "dist", "hops", "pred")

    def __init__(
        self,
        csr: CSRGraph[N, L],
        source_index: int,
        dist: List[float],
        hops: List[int],
        pred: List[int],
    ):
        self.csr = csr
        self.source_index = source_index
        self.dist = dist
        self.hops = hops
        self.pred = pred

    @property
    def source(self) -> N:
        return self.csr.nodes[self.source_index]

    def distance_to(self, node: N) -> Optional[float]:
        """Minimal cost to *node*, or ``None`` if unreachable."""
        value = self.dist[self.csr.index_of[node]]
        return None if value == _INF else value

    def path_to(self, node: N) -> Optional[Path[N, L]]:
        """The minimum-cost path to *node* (``None`` if unreachable).

        Matches :func:`repro.graphs.dijkstra.shortest_path` from the
        tree's source — same cost, same nodes, same edge tie-breaks.
        """
        return reconstruct_path(
            self.csr, self.source_index, self.csr.index_of[node], self.dist, self.pred
        )

    def reachable(self) -> Dict[N, float]:
        """All reachable nodes with their minimal costs."""
        return {
            node: value
            for node, value in zip(self.csr.nodes, self.dist)
            if value != _INF
        }


def bidirectional_shortest_path(
    csr: CSRGraph[N, L], source: N, target: N
) -> Optional[Path[N, L]]:
    """Point-to-point search meeting in the middle.

    Expands the smaller of the forward frontier (over the CSR) and the
    reverse frontier (over the reverse CSR) until their radii cover the
    best known connection.  The returned cost always equals plain
    Dijkstra's; among equal-cost optima the concrete path is chosen by
    (cost, total hops) at the meeting node, which may legitimately differ
    from the forward-search tie-break.
    """
    source_index = csr.index_of[source]
    target_index = csr.index_of[target]
    if source_index == target_index:
        return Path(nodes=(source,), edges=(), cost=0.0)
    n = csr.node_count
    offsets, targets, weights = csr.offsets, csr.targets, csr.weights
    roffsets, redges = csr.roffsets, csr.redges
    edge_source_index = csr.edge_source_index

    dist_f = [_INF] * n
    dist_b = [_INF] * n
    hops_f = [0] * n
    hops_b = [0] * n
    pred_f = [-1] * n
    pred_b = [-1] * n
    settled_f = bytearray(n)
    settled_b = bytearray(n)
    dist_f[source_index] = 0.0
    dist_b[target_index] = 0.0
    heap_f: list = [(0.0, 0, 0, source_index)]
    heap_b: list = [(0.0, 0, 0, target_index)]
    counters = [0, 0]
    best_cost = _INF
    best_hops = 0
    meet = -1

    def consider(node: int) -> None:
        nonlocal best_cost, best_hops, meet
        df, db = dist_f[node], dist_b[node]
        if df == _INF or db == _INF:
            return
        total = df + db
        total_hops = hops_f[node] + hops_b[node]
        if total < best_cost or (total == best_cost and total_hops < best_hops):
            best_cost = total
            best_hops = total_hops
            meet = node

    while heap_f and heap_b:
        # The search is complete once the two radii cover the best
        # connection: no unsettled node can improve on best_cost.
        if heap_f[0][0] + heap_b[0][0] >= best_cost:
            break
        forward = heap_f[0][0] <= heap_b[0][0]
        heap = heap_f if forward else heap_b
        settled = settled_f if forward else settled_b
        dist = dist_f if forward else dist_b
        hops = hops_f if forward else hops_b
        pred = pred_f if forward else pred_b
        cost, nhops, _, index = heapq.heappop(heap)
        if settled[index]:
            continue
        settled[index] = 1
        consider(index)
        if forward:
            edge_range = range(offsets[index], offsets[index + 1])
        else:
            edge_range = (
                redges[slot] for slot in range(roffsets[index], roffsets[index + 1])
            )
        for edge_id in edge_range:
            neighbour = targets[edge_id] if forward else edge_source_index(edge_id)
            if settled[neighbour]:
                continue
            candidate = cost + weights[edge_id]
            candidate_hops = nhops + 1
            if candidate < dist[neighbour] or (
                candidate == dist[neighbour] and candidate_hops < hops[neighbour]
            ):
                dist[neighbour] = candidate
                hops[neighbour] = candidate_hops
                pred[neighbour] = edge_id
                side = 0 if forward else 1
                counters[side] += 1
                heapq.heappush(
                    heap, (candidate, candidate_hops, counters[side], neighbour)
                )
                consider(neighbour)

    if meet < 0:
        return None
    forward_half = reconstruct_path(csr, source_index, meet, dist_f, pred_f)
    assert forward_half is not None
    edges = list(forward_half.edges)
    index = meet
    while index != target_index:
        edge_id = pred_b[index]
        edge = csr.edge_objects[edge_id]
        edges.append(edge)
        index = csr.index_of[edge.target]
    nodes = (csr.nodes[source_index],) + tuple(edge.target for edge in edges)
    return Path(nodes=nodes, edges=tuple(edges), cost=best_cost)


def _banned_shortest_path(
    csr: CSRGraph[N, L],
    source_index: int,
    target_index: int,
    banned_nodes: AbstractSet[int],
    banned_edges: AbstractSet[int],
) -> Optional[Path[N, L]]:
    if source_index == target_index:
        return Path(nodes=(csr.nodes[source_index],), edges=(), cost=0.0)
    dist, _, pred = csr_dijkstra(
        csr,
        source_index,
        target=target_index,
        banned_nodes=banned_nodes,
        banned_edges=banned_edges,
    )
    return reconstruct_path(csr, source_index, target_index, dist, pred)


def k_shortest_paths_csr(
    csr: CSRGraph[N, L], source: N, target: N, k: int
) -> List[Path[N, L]]:
    """Yen's k shortest loopless paths over the compiled graph.

    Mirrors :func:`repro.graphs.yen.k_shortest_paths` candidate for
    candidate — spur queries run banned-set Dijkstra on the shared CSR
    arrays instead of materializing pruned :class:`Digraph` copies, so
    the output (paths, costs, order) is identical while each spur query
    skips the full graph copy.
    """
    if k <= 0:
        return []
    source_index = csr.index_of[source]
    target_index = csr.index_of[target]
    first = csr.shortest_path(source, target)
    if first is None:
        return []
    found: List[Path[N, L]] = [first]
    seen: Set[Tuple] = {(first.nodes, first.labels)}
    candidates: List[Tuple[float, int, Path[N, L]]] = []
    order = 0

    while len(found) < k:
        prev = found[-1]
        for i in range(len(prev.edges)):
            spur_index = csr.index_of[prev.nodes[i]]
            root_edges = prev.edges[:i]
            root_cost = sum(edge.weight for edge in root_edges)
            banned_edges: Set[int] = set()
            for path in found:
                if path.nodes[: i + 1] == prev.nodes[: i + 1] and len(path.edges) > i:
                    banned_edges.update(
                        csr.edges_labelled(
                            csr.index_of[path.edges[i].source], path.edges[i].label
                        )
                    )
            banned_nodes = {csr.index_of[node] for node in prev.nodes[:i]}
            if spur_index in banned_nodes or target_index in banned_nodes:
                continue
            spur = _banned_shortest_path(
                csr, spur_index, target_index, banned_nodes, banned_edges
            )
            if spur is None:
                continue
            total = Path(
                nodes=prev.nodes[:i] + spur.nodes,
                edges=root_edges + spur.edges,
                cost=root_cost + spur.cost,
            )
            key = (total.nodes, total.labels)
            if key not in seen:
                seen.add(key)
                candidates.append((total.cost, order, total))
                order += 1
        if not candidates:
            break
        candidates.sort(key=lambda item: (item[0], item[1]))
        _, _, best = candidates.pop(0)
        found.append(best)
    return found
