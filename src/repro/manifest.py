"""Declarative system manifests: the analysis-phase artifact as a file.

The paper's analysis phase (§4.1) has developers prepare
``P = (S, I, T, R, A)``.  A manifest captures the declarative parts —
components with their host processes, dependency invariants, adaptive
actions with costs, and named configurations — in a plain-text format, so
a system can be planned and simulated without writing Python:

.. code-block:: text

    # video.manifest
    [components]
    D5 @ laptop   : DES 128-bit decoder
    D4 @ laptop   : DES 64-bit decoder
    E1 @ server   : DES 64-bit encoder

    [invariants]
    resource : one_of(D1, D2, D3)
    : E1 -> (D1 | D2) & D4          # unnamed invariant

    [actions]
    A1  : E1 -> E2 @ 10             # replace, cost 10
    A16 : -D4 @ 10                  # remove
    A17 : +D5 @ 10                  # insert
    A14 : (D1, D4, E1) -> (D3, D5, E2) @ 150

    [configurations]
    source = 0100101                # bit vector over [components] order
    target = D3, D5, E2             # or an explicit member list

``loads``/``dumps`` round-trip; the CLI (``python -m repro``) consumes
manifests directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import Invariant, InvariantSet
from repro.core.model import Component, ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner
from repro.errors import ParseError
from repro.expr.ast import to_text

_SECTIONS = ("components", "invariants", "actions", "configurations")

_COMPONENT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][\w.\-]*)\s*(?:@\s*(?P<process>[\w.\-]+))?"
    r"\s*(?::\s*(?P<description>.*))?$"
)
_ACTION_RE = re.compile(
    r"^(?P<id>[\w.\-]+)\s*:\s*(?P<operation>.+?)\s*@\s*(?P<cost>[0-9.]+)"
    r"\s*(?:;\s*(?P<description>.*))?$"
)
_REPLACE_RE = re.compile(
    r"^(?:\((?P<removes_group>[^)]*)\)|(?P<removes_one>[\w.\-]+))\s*->\s*"
    r"(?:\((?P<adds_group>[^)]*)\)|(?P<adds_one>[\w.\-]+))$"
)


@dataclass
class SystemManifest:
    """A parsed manifest: the declarative analysis-phase model."""

    universe: ComponentUniverse
    invariants: InvariantSet
    actions: ActionLibrary
    configurations: Dict[str, Configuration] = field(default_factory=dict)

    def planner(self) -> AdaptationPlanner:
        return AdaptationPlanner(self.universe, self.invariants, self.actions)

    def resolve_configuration(self, spec: str) -> Configuration:
        """Resolve a named configuration, bit vector, or member list."""
        if spec in self.configurations:
            return self.configurations[spec]
        stripped = spec.strip()
        if re.fullmatch(r"[01]+", stripped):
            return self.universe.from_bits(stripped)
        members = [part.strip() for part in stripped.split(",") if part.strip()]
        self.universe.validate_members(members)
        return Configuration(members)


def _strip_comment(line: str) -> str:
    # '#' starts a comment unless inside nothing fancy (manifests have no
    # string literals, so a bare find is correct).
    index = line.find("#")
    return line if index < 0 else line[:index]


def _parse_operation(text: str, line_no: int) -> Tuple[frozenset, frozenset]:
    text = text.strip()
    if text.startswith("+"):
        names = [part.strip() for part in text[1:].split(",")]
        return frozenset(), frozenset(filter(None, names))
    if text.startswith("-"):
        names = [part.strip() for part in text[1:].split(",")]
        return frozenset(filter(None, names)), frozenset()
    match = _REPLACE_RE.match(text)
    if match is None:
        raise ParseError(
            f"line {line_no}: cannot parse action operation {text!r}"
        )
    removes_raw = match.group("removes_group") or match.group("removes_one")
    adds_raw = match.group("adds_group") or match.group("adds_one")
    removes = frozenset(p.strip() for p in removes_raw.split(",") if p.strip())
    adds = frozenset(p.strip() for p in adds_raw.split(",") if p.strip())
    return removes, adds


def loads(text: str) -> SystemManifest:
    """Parse a manifest string.  Raises :class:`ParseError` on bad input."""
    components: List[Component] = []
    invariant_entries: List[Tuple[str, str]] = []
    action_entries: List[Tuple[str, str, float, str, int]] = []
    config_entries: List[Tuple[str, str]] = []
    section: Optional[str] = None

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip().lower()
            if section not in _SECTIONS:
                raise ParseError(f"line {line_no}: unknown section [{section}]")
            continue
        if section is None:
            raise ParseError(f"line {line_no}: content before any [section]")
        if section == "components":
            match = _COMPONENT_RE.match(line)
            if match is None:
                raise ParseError(f"line {line_no}: bad component {line!r}")
            components.append(
                Component(
                    match.group("name"),
                    process=match.group("process") or "local",
                    description=(match.group("description") or "").strip(),
                )
            )
        elif section == "invariants":
            if ":" in line:
                name, _, expr_text = line.partition(":")
                invariant_entries.append((name.strip(), expr_text.strip()))
            else:
                invariant_entries.append(("", line))
        elif section == "actions":
            match = _ACTION_RE.match(line)
            if match is None:
                raise ParseError(f"line {line_no}: bad action {line!r}")
            action_entries.append(
                (
                    match.group("id"),
                    match.group("operation"),
                    float(match.group("cost")),
                    (match.group("description") or "").strip(),
                    line_no,
                )
            )
        elif section == "configurations":
            name, eq, value = line.partition("=")
            if not eq:
                raise ParseError(
                    f"line {line_no}: configurations need 'name = value'"
                )
            config_entries.append((name.strip(), value.strip()))

    if not components:
        raise ParseError("manifest has no [components]")
    universe = ComponentUniverse(components)

    invariants = InvariantSet(
        [Invariant(expr_text, name=name) for name, expr_text in invariant_entries]
    )
    for invariant in invariants:
        unknown = invariant.atoms() - universe.names
        if unknown:
            raise ParseError(
                f"invariant {invariant.name!r} mentions unknown components "
                f"{sorted(unknown)}"
            )

    actions = ActionLibrary()
    for action_id, operation, cost, description, line_no in action_entries:
        removes, adds = _parse_operation(operation, line_no)
        unknown = (removes | adds) - universe.names
        if unknown:
            raise ParseError(
                f"line {line_no}: action {action_id} uses unknown components "
                f"{sorted(unknown)}"
            )
        actions.add(AdaptiveAction(action_id, removes, adds, cost, description))

    manifest = SystemManifest(universe, invariants, actions)
    for name, value in config_entries:
        manifest.configurations[name] = manifest.resolve_configuration(value)
    return manifest


def load_path(path) -> SystemManifest:
    """Parse a manifest file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def dumps(manifest: SystemManifest) -> str:
    """Render a manifest back to text (``loads``/``dumps`` round-trips)."""
    lines: List[str] = ["[components]"]
    for component in manifest.universe:
        entry = f"{component.name} @ {component.process}"
        if component.description:
            entry += f" : {component.description}"
        lines.append(entry)
    lines.append("")
    lines.append("[invariants]")
    for invariant in manifest.invariants:
        rendered = to_text(invariant.expr)
        name = invariant.name if invariant.name != rendered else ""
        lines.append(f"{name} : {rendered}".strip())
    lines.append("")
    lines.append("[actions]")
    for action in manifest.actions:
        entry = f"{action.action_id} : {action.operation_text()} @ {action.cost:g}"
        if action.description:
            entry += f" ; {action.description}"
        lines.append(entry)
    if manifest.configurations:
        lines.append("")
        lines.append("[configurations]")
        for name, config in manifest.configurations.items():
            lines.append(f"{name} = {manifest.universe.to_bits(config)}")
    lines.append("")
    return "\n".join(lines)


def video_manifest_text() -> str:
    """The §5 video system as a manifest (used by docs, tests, and CLI)."""
    from repro.apps.video.system import (
        PAPER_SOURCE_BITS,
        PAPER_TARGET_BITS,
        video_actions,
        video_invariants,
        video_universe,
    )

    manifest = SystemManifest(
        video_universe(), video_invariants(), video_actions()
    )
    manifest.configurations["source"] = manifest.universe.from_bits(PAPER_SOURCE_BITS)
    manifest.configurations["target"] = manifest.universe.from_bits(PAPER_TARGET_BITS)
    return dumps(manifest)
