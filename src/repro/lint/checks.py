"""The adaptation-spec analyzers behind ``repro lint`` (SA1xx–SA6xx).

The pipeline mirrors the paper's development-time analysis phase:

1. **SA1xx (well-formedness)** runs over the raw scan entries
   (:class:`repro.manifest.ManifestSource`) so *every* defect is reported,
   not just the first; defective entries are dropped and analysis
   continues on the valid remainder (linter-style recovery).
2. **SA2xx (invariant semantics)** decides per-invariant satisfiability
   and tautology by enumerating the invariant's own atoms on the compiled
   bitmask closure (:mod:`repro.expr.compile`) — exponential only in the
   invariant's fan-in, never in the universe.  Unsatisfiable invariants
   and the second half of mutually-unsatisfiable pairs are excluded from
   the downstream model so the structural checks still run.
3. **SA3xx (action/SAG analysis)** enumerates the safe space and the
   per-action arc sets on integer masks (same fast path as the planner):
   dead and dominated actions, zero costs, missing replace inverses, weak
   connectivity of the Safe Adaptation Graph, and reachability between
   the manifest's named configurations (Hufflen-style reconfiguration
   path checking, arXiv:1703.07036).
4. **SA6xx (interference)** checks every unordered action pair for
   concurrency hazards (:mod:`repro.lint.interference`): non-commuting
   firing orders, blocking-window overlap, lost inverses, and
   conflicting touched sets, honoring declared ``[conflicts]`` pairs —
   over the enumerated safe space when SA3xx enumerated it, over the
   named configurations (with an SA605 note) above the cap.
5. **SA5xx (temporal properties)** compiles each ``[properties]`` formula
   (:class:`~repro.ltl.compile.CompiledProperty`) and checks it over the
   safe space (satisfiability) and over every ordered pair of safe named
   configurations by path-quantified verification
   (:func:`repro.ltl.paths.verify_paths`) — eagerly below the
   enumeration cap, by budget-bounded frontier search above it.
6. **SA4xx (runtime contracts)** vets the declared CCS language shape for
   online enforceability, flags globally blocking actions, and reports
   blast radii via :mod:`repro.core.analysis`.

The AST evaluator remains the semantic source of truth: the hypothesis
suite in ``tests/lint`` pins every mask-based verdict (unsatisfiable
invariant, dead action) to brute-force AST enumeration.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.actions import AdaptiveAction, MaskedAction
from repro.core.analysis import blast_radius, invariants_at_risk
from repro.core.invariants import Invariant, InvariantSet
from repro.core.model import Component, ComponentUniverse, Configuration
from repro.errors import ActionError, ParseError
from repro.expr.ast import Expr
from repro.expr.compile import compile_conjunction
from repro.expr.parser import parse
from repro.lint.diagnostics import LintReport, Related, Severity
from repro.lint.fixes import Edit, delete_line_fix
from repro.lint.interference import check_interference
from repro.ltl.ast import PFormula, parse_property
from repro.manifest import (
    CCSEntry,
    ManifestSource,
    SystemManifest,
    _parse_operation,
)
from repro.span import Span

#: Enumerating a truth table is capped at this many variable bits —
#: beyond it the check is skipped (recorded in ``report.skipped``).
MAX_SAT_ATOMS = 16
#: Default cap on safe-space enumeration (SA3xx).  Overridable per run
#: (``max_enum_components=``); a skip now emits an explicit SA307 note
#: besides the ``report.skipped`` line.  Raised from 22 since the
#: enumeration can run on a process pool (``workers=``).
MAX_ENUM_COMPONENTS = 24


@dataclass
class _InvariantItem:
    invariant: Invariant
    span: Span
    #: excluded from the downstream model (unsat / conflicting pair)
    dropped: bool = False


@dataclass
class _ActionItem:
    action: AdaptiveAction
    span: Span


@dataclass
class _ConfigItem:
    name: str
    configuration: Configuration
    span: Span


@dataclass
class _PropertyItem:
    name: str
    formula: "PFormula"
    span: Span


@dataclass
class _Model:
    """What survives SA1xx: the analyzable part of the spec."""

    universe: ComponentUniverse
    invariants: List[_InvariantItem] = field(default_factory=list)
    actions: List[_ActionItem] = field(default_factory=list)
    configurations: List[_ConfigItem] = field(default_factory=list)
    ccs: List[CCSEntry] = field(default_factory=list)
    properties: List[_PropertyItem] = field(default_factory=list)
    sections: Dict[str, Span] = field(default_factory=dict)
    #: declared ``[conflicts]`` pairs (sorted, deduped) — SA6xx skips them
    conflicts: List[Tuple[str, str]] = field(default_factory=list)

    def section_span(self, name: str) -> Span:
        return self.sections.get(name, Span(1, 1))

    def kept_invariants(self) -> InvariantSet:
        return InvariantSet(
            [item.invariant for item in self.invariants if not item.dropped]
        )


# -- satisfiability primitives (exposed for the property tests) ------------------


def truth_profile(
    expr: Expr, universe: ComponentUniverse
) -> Optional[Tuple[bool, bool]]:
    """``(satisfiable, tautology)`` of *expr* over the universe.

    Enumerates only the expression's own atoms on the compiled mask
    closure: atoms outside the universe are constant-false (a component
    that can never be present), so the table over in-universe atoms is
    exact.  Returns ``None`` when the fan-in exceeds :data:`MAX_SAT_ATOMS`.
    """
    return _profile_conjunction((expr,), universe)


def jointly_satisfiable(
    left: Expr, right: Expr, universe: ComponentUniverse
) -> Optional[bool]:
    """Whether two expressions can hold in one configuration (or ``None``)."""
    profile = _profile_conjunction((left, right), universe)
    return None if profile is None else profile[0]


def _profile_conjunction(
    exprs: Sequence[Expr], universe: ComponentUniverse
) -> Optional[Tuple[bool, bool]]:
    atoms: Set[str] = set()
    for expr in exprs:
        atoms |= expr.atoms() & universe.names
    names = sorted(atoms)
    if len(names) > MAX_SAT_ATOMS:
        return None
    bits = [universe.bit_of(name) for name in names]
    fn = compile_conjunction(exprs, universe.atom_bits)
    satisfiable = False
    tautology = True
    for combo in range(1 << len(bits)):
        mask = 0
        for index, bit in enumerate(bits):
            if combo & (1 << index):
                mask |= bit
        if fn(mask):
            satisfiable = True
        else:
            tautology = False
        if satisfiable and not tautology:
            break
    return satisfiable, tautology


def action_arcs(
    safe_masks: Sequence[int],
    safe_set: FrozenSet[int],
    masked: MaskedAction,
) -> Tuple[int, Tuple[Tuple[int, int], ...]]:
    """``(applicable_count, safe arcs)`` of one action over the safe space.

    An arc is a ``(source_mask, target_mask)`` pair with both endpoints
    safe — exactly the SAG arcs this action would label.
    """
    applicable = 0
    arcs: List[Tuple[int, int]] = []
    required = masked.required
    forbidden = masked.forbidden
    clear = masked.clear
    set_bits = masked.set_bits
    for mask in safe_masks:
        if (mask & required) == required and not (mask & forbidden):
            applicable += 1
            result = (mask & ~clear) | set_bits
            if result in safe_set:
                arcs.append((mask, result))
    return applicable, tuple(arcs)


# -- stage 1: well-formedness (SA1xx) -------------------------------------------


def _collect(
    source: ManifestSource, report: LintReport
) -> Optional[_Model]:
    path = source.path
    for issue in source.issues:
        # Strict-mode messages carry a "line N:" prefix for bare
        # exceptions; the diagnostic span already says where.
        message = re.sub(r"^line \d+: ", "", issue.message)
        report.add("SA100", message, issue.span, path)

    seen: Dict[str, Span] = {}
    components: List[Component] = []
    for entry in source.components:
        if entry.name in seen:
            report.add(
                "SA105",
                f"duplicate component {entry.name!r}",
                entry.span,
                path,
                related=[Related("first declared here", seen[entry.name])],
                fixes=[
                    delete_line_fix(
                        f"delete the duplicate {entry.name!r} declaration",
                        entry.span,
                    )
                ],
            )
            continue
        seen[entry.name] = entry.span
        components.append(
            Component(entry.name, process=entry.process, description=entry.description)
        )
    if not components:
        report.add(
            "SA100",
            "manifest has no [components]",
            source.section_span("components"),
            path,
        )
        return None
    model = _Model(
        universe=ComponentUniverse(components), sections=dict(source.sections)
    )

    for inv_entry in source.invariants:
        try:
            expr = parse(inv_entry.expr_text)
        except ParseError as exc:
            span = inv_entry.expr_span
            if exc.position:
                span = Span(
                    span.line,
                    span.column + exc.position,
                    span.line,
                    span.end_column,
                )
            report.add(
                "SA100",
                f"bad invariant expression {inv_entry.expr_text!r}: "
                f"{exc.args[0] if exc.args else exc}",
                span,
                path,
            )
            continue
        invariant = Invariant(expr, name=inv_entry.name)
        unknown = sorted(invariant.atoms() - model.universe.names)
        if unknown:
            report.add(
                "SA101",
                f"invariant {invariant.name!r} mentions unknown "
                f"component(s) {', '.join(unknown)}",
                inv_entry.expr_span,
                path,
            )
            continue
        model.invariants.append(_InvariantItem(invariant, inv_entry.span))

    action_spans: Dict[str, Span] = {}
    for act_entry in source.actions:
        try:
            removes, adds = _parse_operation(
                act_entry.operation, act_entry.span.line, act_entry.span
            )
        except ParseError as exc:
            message = re.sub(r"^line \d+: ", "", exc.args[0] if exc.args else str(exc))
            report.add("SA100", message, act_entry.span, path)
            continue
        try:
            cost = float(act_entry.cost_text)
        except ValueError:
            report.add(
                "SA100",
                f"action {act_entry.action_id!r} has a bad cost "
                f"{act_entry.cost_text!r}",
                act_entry.span,
                path,
            )
            continue
        if act_entry.action_id in action_spans:
            report.add(
                "SA106",
                f"duplicate action id {act_entry.action_id!r}",
                act_entry.span,
                path,
                related=[
                    Related("first declared here", action_spans[act_entry.action_id])
                ],
                fixes=[
                    delete_line_fix(
                        f"delete the duplicate {act_entry.action_id!r} line",
                        act_entry.span,
                    )
                ],
            )
            continue
        unknown = sorted((removes | adds) - model.universe.names)
        if unknown:
            report.add(
                "SA102",
                f"action {act_entry.action_id!r} uses unknown "
                f"component(s) {', '.join(unknown)}",
                act_entry.span,
                path,
            )
            continue
        try:
            action = AdaptiveAction(
                act_entry.action_id, removes, adds, cost, act_entry.description
            )
        except ActionError as exc:
            report.add(
                "SA100", f"ill-formed action: {exc}", act_entry.span, path
            )
            continue
        action_spans[act_entry.action_id] = act_entry.span
        model.actions.append(_ActionItem(action, act_entry.span))

    config_index: Dict[str, int] = {}
    named: Dict[str, Configuration] = {}
    for cfg_entry in source.configurations:
        value = cfg_entry.value
        if value in named:
            resolved = named[value]
        elif _looks_like_bits(value):
            if len(value) != len(model.universe):
                report.add(
                    "SA103",
                    f"configuration {cfg_entry.name!r}: bit vector {value!r} "
                    f"has width {len(value)}, universe has "
                    f"{len(model.universe)} component(s)",
                    cfg_entry.value_span,
                    path,
                )
                continue
            resolved = model.universe.from_bits(value)
        else:
            members = [p.strip() for p in value.split(",") if p.strip()]
            unknown = sorted(set(members) - model.universe.names)
            if unknown:
                report.add(
                    "SA104",
                    f"configuration {cfg_entry.name!r} references unknown "
                    f"component(s) {', '.join(unknown)}",
                    cfg_entry.value_span,
                    path,
                )
                continue
            resolved = Configuration(members)
        if cfg_entry.name in config_index:
            previous = model.configurations[config_index[cfg_entry.name]]
            report.add(
                "SA107",
                f"duplicate configuration name {cfg_entry.name!r} "
                "(this later value is the one used)",
                cfg_entry.span,
                path,
                related=[Related("first defined here", previous.span)],
                fixes=[
                    delete_line_fix(
                        f"delete the shadowed first {cfg_entry.name!r} "
                        "definition",
                        previous.span,
                    )
                ],
            )
            model.configurations[config_index[cfg_entry.name]] = _ConfigItem(
                cfg_entry.name, resolved, cfg_entry.span
            )
            named[cfg_entry.name] = resolved
            continue
        config_index[cfg_entry.name] = len(model.configurations)
        model.configurations.append(
            _ConfigItem(cfg_entry.name, resolved, cfg_entry.span)
        )
        named[cfg_entry.name] = resolved

    model.ccs = list(source.ccs)

    property_spans: Dict[str, Span] = {}
    for prop_entry in source.properties:
        try:
            formula = parse_property(prop_entry.formula_text)
        except ParseError as exc:
            span = prop_entry.formula_span
            if exc.position:
                span = Span(
                    span.line,
                    span.column + exc.position,
                    span.line,
                    span.end_column,
                )
            report.add(
                "SA100",
                f"bad property formula {prop_entry.formula_text!r}: "
                f"{exc.args[0] if exc.args else exc}",
                span,
                path,
            )
            continue
        unknown = sorted(formula.atoms() - model.universe.names)
        if unknown:
            report.add(
                "SA505",
                f"property {prop_entry.name!r} mentions unknown "
                f"component(s) {', '.join(unknown)}",
                prop_entry.formula_span,
                path,
            )
            continue
        if prop_entry.name in property_spans:
            report.add(
                "SA100",
                f"duplicate property {prop_entry.name!r}",
                prop_entry.span,
                path,
                related=[
                    Related("first declared here", property_spans[prop_entry.name])
                ],
            )
            continue
        property_spans[prop_entry.name] = prop_entry.span
        model.properties.append(
            _PropertyItem(prop_entry.name, formula, prop_entry.span)
        )

    # SA606: a [conflicts] pair naming an action the library does not
    # have (strict build() raises here; the linter reports and drops).
    for conflict_entry in source.conflicts:
        unknown = sorted(
            aid for aid in conflict_entry.actions if aid not in action_spans
        )
        if unknown:
            report.add(
                "SA606",
                f"conflicts entry names unknown action(s) "
                f"{', '.join(repr(aid) for aid in unknown)}",
                conflict_entry.span,
                path,
                fixes=[
                    delete_line_fix(
                        "delete the conflicts entry naming unknown actions",
                        conflict_entry.span,
                    )
                ],
            )
            continue
        pair = (
            min(conflict_entry.actions),
            max(conflict_entry.actions),
        )
        if pair not in model.conflicts:
            model.conflicts.append(pair)

    # SA108: components no invariant constrains and no action touches can
    # never participate in (or gate) an adaptation — dead weight that
    # doubles the safe space per component.
    if model.invariants or model.actions:
        referenced: Set[str] = set()
        for item in model.invariants:
            referenced |= item.invariant.atoms()
        for act_item in model.actions:
            referenced |= act_item.action.touched
        width = len(model.universe)
        for index, name in enumerate(model.universe.order):
            if name in referenced:
                continue
            # The fix drops the declaration *and* splices the component's
            # bit out of every full-width bit-vector configuration value,
            # so the shrunk universe does not cascade into SA103 errors.
            splices = []
            for cfg_entry in source.configurations:
                value = cfg_entry.value
                if not _looks_like_bits(value) or len(value) != width:
                    continue
                vspan = cfg_entry.value_span
                splices.append(
                    Edit(
                        Span(
                            vspan.line,
                            vspan.column + index,
                            vspan.line,
                            vspan.column + index + 1,
                        ),
                        "",
                    )
                )
            report.add(
                "SA108",
                f"component {name!r} is not constrained by any invariant "
                "nor touched by any action",
                seen[name],
                path,
                fixes=[
                    delete_line_fix(
                        f"delete unused component {name!r} (and its bit in "
                        "every bit-vector configuration)",
                        seen[name],
                        extra=splices,
                    )
                ],
            )
    return model


def _looks_like_bits(value: str) -> bool:
    return bool(value) and all(ch in "01" for ch in value)


# -- stage 2: invariant semantics (SA2xx) ---------------------------------------


def _check_invariants(model: _Model, report: LintReport, path: Optional[str]) -> None:
    universe = model.universe
    for item in model.invariants:
        profile = truth_profile(item.invariant.expr, universe)
        if profile is None:
            report.skipped.append(
                f"SA201/SA202 skipped for {item.invariant.name!r}: "
                f"more than {MAX_SAT_ATOMS} atoms"
            )
            continue
        satisfiable, tautology = profile
        if not satisfiable:
            item.dropped = True
            report.add(
                "SA202",
                f"invariant {item.invariant.name!r} is unsatisfiable: no "
                "configuration can ever be safe while it is declared "
                "(excluded from further analysis)",
                item.span,
                path,
            )
        elif tautology:
            report.add(
                "SA201",
                f"invariant {item.invariant.name!r} is a tautology: it holds "
                "in every configuration and constrains nothing",
                item.span,
                path,
            )

    # Pairwise conflicts among individually-satisfiable invariants: both
    # hold somewhere, but never together — the safe space is empty even
    # though every line looks reasonable on its own.  Only overlapping
    # atom sets can conflict (disjoint expressions compose freely).
    alive = [item for item in model.invariants if not item.dropped]
    for i, first in enumerate(alive):
        if first.dropped:
            continue
        for second in alive[i + 1:]:
            if second.dropped:
                continue
            if not (first.invariant.atoms() & second.invariant.atoms()):
                continue
            verdict = jointly_satisfiable(
                first.invariant.expr, second.invariant.expr, model.universe
            )
            if verdict is False:
                second.dropped = True
                report.add(
                    "SA203",
                    f"invariants {first.invariant.name!r} and "
                    f"{second.invariant.name!r} are mutually unsatisfiable — "
                    "together they empty the safe space (the second is "
                    "excluded from further analysis)",
                    second.span,
                    path,
                    related=[Related("conflicts with this invariant", first.span)],
                )

    if model.actions:
        touched: Set[str] = set()
        for act_item in model.actions:
            touched |= act_item.action.touched
        for item in model.invariants:
            if item.dropped:
                continue
            atoms = item.invariant.atoms() & model.universe.names
            if atoms and not (atoms & touched):
                report.add(
                    "SA204",
                    f"invariant {item.invariant.name!r} mentions only "
                    "components no action touches: adaptation can never "
                    "violate (or be constrained by) it",
                    item.span,
                    path,
                )


# -- stage 3: action/SAG analysis (SA3xx) ---------------------------------------


def _check_actions(
    model: _Model,
    report: LintReport,
    path: Optional[str],
    max_enum_components: Optional[int] = None,
    workers: Optional[int] = None,
    fixes_enabled: bool = False,
) -> Optional[Tuple[List[int], FrozenSet[int]]]:
    """SA3xx.  Returns ``(safe_masks, safe_set)`` when the safe space was
    enumerated (the SA6xx stage reuses it), ``None`` above the cap or on
    an empty safe space."""
    from repro.core.space import SafeConfigurationSpace

    cap = MAX_ENUM_COMPONENTS if max_enum_components is None else max_enum_components
    universe = model.universe
    # SA303/SA304 need only the action library — they run regardless of
    # universe size, so their findings survive past the enumeration cap.
    _check_library_actions(model, report, path)
    if len(universe) > cap:
        message = (
            f"SA3xx skipped: {len(universe)} components exceed the "
            f"{cap}-component enumeration cap (SA301/SA302/SA305 only; "
            "named-configuration checks ran lazily)"
        )
        report.skipped.append(message)
        report.add(
            "SA307",
            f"full safe-space analysis (SA301/SA302/SA305) skipped: "
            f"{len(universe)} components exceed the {cap}-component "
            "enumeration cap; named-configuration safety (SA205) and "
            "reachability (SA306) were checked by lazy frontier search "
            "instead — raise the cap with --max-enum-components to run "
            "the full analysis (enumeration can run in parallel via "
            "--enum-workers)",
            model.section_span("components"),
            path,
        )
        _check_named_pairs_lazy(model, report, path)
        return None
    space = SafeConfigurationSpace(universe, model.kept_invariants(), workers=workers)
    safe_masks = space.enumerate_masks()
    stats = space.last_enumeration_stats
    if workers is not None and stats is not None:
        # verbose evidence of how the sweep actually ran (the persistent
        # pool makes repeated sweeps over the same spec warm)
        report.skipped.append(
            f"SA3xx safe-space enumeration: {stats.reason} "
            f"({stats.total_ms:.1f} ms)"
        )
    if not safe_masks:
        report.add(
            "SA203",
            "the invariant conjunction admits no safe configuration at all "
            "(empty safe space); structural analysis skipped",
            model.section_span("invariants"),
            path,
        )
        report.skipped.append("SA3xx skipped: empty safe space")
        return None
    safe_set = frozenset(safe_masks)
    bits = universe.atom_bits

    arcs_by_action: Dict[str, Tuple[Tuple[int, int], ...]] = {}
    for item in model.actions:
        action = item.action
        applicable, arcs = action_arcs(safe_masks, safe_set, MaskedAction(action, bits))
        arcs_by_action[action.action_id] = arcs
        if not arcs:
            if applicable == 0:
                detail = "it is never applicable from any safe configuration"
            else:
                detail = (
                    f"it is applicable from {applicable} safe "
                    "configuration(s) but every result violates the invariants"
                )
            report.add(
                "SA301",
                f"dead action {action.action_id!r}: {detail}",
                item.span,
                path,
                fixes=(
                    [
                        delete_line_fix(
                            f"delete dead action {action.action_id!r}",
                            item.span,
                        )
                    ]
                    if fixes_enabled
                    else []
                ),
            )

    for item in model.actions:
        arcs = arcs_by_action[item.action.action_id]
        if not arcs:
            continue  # dead actions already reported
        arc_set = set(arcs)
        for other in model.actions:
            if other is item:
                continue
            if other.action.cost >= item.action.cost:
                continue
            if arc_set <= set(arcs_by_action[other.action.action_id]):
                report.add(
                    "SA302",
                    f"action {item.action.action_id!r} is dominated: "
                    f"{other.action.action_id!r} realizes every one of its "
                    f"safe arcs at cost {other.action.cost:g} < "
                    f"{item.action.cost:g}",
                    item.span,
                    path,
                    related=[Related("dominating action", other.span)],
                    fixes=(
                        [
                            delete_line_fix(
                                f"delete dominated action "
                                f"{item.action.action_id!r}",
                                item.span,
                            )
                        ]
                        if fixes_enabled
                        else []
                    ),
                )
                break

    _check_connectivity(model, report, path, safe_masks, arcs_by_action)
    _check_named_pairs(model, report, path, space, arcs_by_action)
    return safe_masks, safe_set


def _check_library_actions(
    model: _Model, report: LintReport, path: Optional[str]
) -> None:
    """SA303/SA304: action-library-only checks (no safe space needed)."""
    for item in model.actions:
        if item.action.cost == 0:
            report.add(
                "SA303",
                f"action {item.action.action_id!r} has zero cost: "
                "minimum-path ties become ambiguous and free cycles enter "
                "the SAG",
                item.span,
                path,
            )

    # Asymmetric replaces: §4.4 rollback re-routes through the library —
    # a replace with no declared inverse leaves only synthesized undo
    # actions (which the planner cannot route through).
    deltas = {
        (item.action.removes, item.action.adds) for item in model.actions
    }
    for item in model.actions:
        action = item.action
        if not (action.removes and action.adds):
            continue
        if len(action.removes) != 1 or len(action.adds) != 1:
            continue
        if (action.adds, action.removes) not in deltas:
            report.add(
                "SA304",
                f"replace {action.action_id!r} "
                f"({action.operation_text()}) has no inverse replace in the "
                "library: once committed, planned rollback cannot route back",
                item.span,
                path,
            )


def _check_connectivity(
    model: _Model,
    report: LintReport,
    path: Optional[str],
    safe_masks: Sequence[int],
    arcs_by_action: Dict[str, Tuple[Tuple[int, int], ...]],
) -> None:
    parent: Dict[int, int] = {mask: mask for mask in safe_masks}

    def find(mask: int) -> int:
        root = mask
        while parent[root] != root:
            root = parent[root]
        while parent[mask] != root:
            parent[mask], mask = root, parent[mask]
        return root

    for arcs in arcs_by_action.values():
        for src, dst in arcs:
            parent[find(src)] = find(dst)

    groups: Dict[int, List[int]] = {}
    for mask in safe_masks:
        groups.setdefault(find(mask), []).append(mask)
    if len(groups) <= 1:
        return
    ordered = sorted(groups.values(), key=lambda g: (-len(g), min(g)))
    sizes = ", ".join(str(len(group)) for group in ordered)
    sample = model.universe.from_mask(min(ordered[-1]))
    report.add(
        "SA305",
        f"the Safe Adaptation Graph is disconnected: {len(groups)} "
        f"component group(s) of sizes {sizes}; e.g. "
        f"{model.universe.to_bits(sample)} {sample.label()} cannot reach "
        "the rest",
        model.section_span("actions"),
        path,
    )


def _check_named_pairs(
    model: _Model,
    report: LintReport,
    path: Optional[str],
    space,
    arcs_by_action: Dict[str, Tuple[Tuple[int, int], ...]],
) -> None:
    universe = model.universe
    adjacency: Dict[int, Set[int]] = {}
    for arcs in arcs_by_action.values():
        for src, dst in arcs:
            adjacency.setdefault(src, set()).add(dst)

    def reachable(start: int) -> Set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    endpoints: List[Tuple[_ConfigItem, int]] = []
    for item in model.configurations:
        try:
            mask = universe.mask_of(item.configuration)
        except Exception:
            continue
        if not space.is_safe_mask(mask):
            report.add(
                "SA205",
                f"named configuration {item.name!r} violates the invariants: "
                f"{model.kept_invariants().explain(item.configuration)}",
                item.span,
                path,
            )
            continue
        endpoints.append((item, mask))

    reach_cache: Dict[int, Set[int]] = {}
    for index, (first, first_mask) in enumerate(endpoints):
        for second, second_mask in endpoints[index + 1:]:
            if first_mask == second_mask:
                continue
            if first_mask not in reach_cache:
                reach_cache[first_mask] = reachable(first_mask)
            if second_mask not in reach_cache:
                reach_cache[second_mask] = reachable(second_mask)
            forward = second_mask in reach_cache[first_mask]
            backward = first_mask in reach_cache[second_mask]
            if not forward and not backward:
                report.add(
                    "SA306",
                    f"no safe adaptation path exists between configurations "
                    f"{first.name!r} and {second.name!r} in either direction",
                    second.span,
                    path,
                    related=[Related("the other endpoint", first.span)],
                )
            elif not forward or not backward:
                src, dst = (second, first) if forward else (first, second)
                report.add(
                    "SA306",
                    f"configuration {dst.name!r} is unreachable from "
                    f"{src.name!r} (one-way: only the reverse direction has "
                    "a safe path)",
                    dst.span,
                    path,
                    related=[Related("unreachable from here", src.span)],
                    severity=Severity.NOTE,
                )


#: node budget for one lazy reachability search above the enumeration
#: cap; an exhausted search is *inconclusive* (recorded in
#: ``report.skipped``), never a finding
LAZY_REACH_EXPANSIONS = 20_000


def _check_named_pairs_lazy(
    model: _Model, report: LintReport, path: Optional[str]
) -> None:
    """SA205/SA306 for universes too large to enumerate.

    Named-configuration safety is a point query against the compiled
    invariant closure; pairwise reachability is a budget-bounded BFS
    over the implicit SAG (:class:`~repro.core.sag.LazySAG`).  Verdicts
    are tri-state: a search that finds the other endpoint proves
    reachability, a search that exhausts the reachable component
    without finding it proves unreachability, and a search that runs
    out of budget proves nothing — the pair is recorded as skipped
    rather than misreported.
    """
    from repro.core.actions import ActionLibrary
    from repro.core.sag import LazySAG
    from repro.core.space import LazySafeSpace

    universe = model.universe
    invariants = model.kept_invariants()
    space = LazySafeSpace(universe, invariants)
    lazy = LazySAG(space, ActionLibrary(item.action for item in model.actions))

    endpoints: List[Tuple[_ConfigItem, int]] = []
    for item in model.configurations:
        try:
            mask = universe.mask_of(item.configuration)
        except Exception:
            continue
        if not space.is_safe_mask(mask):
            report.add(
                "SA205",
                f"named configuration {item.name!r} violates the invariants: "
                f"{invariants.explain(item.configuration)}",
                item.span,
                path,
            )
            continue
        endpoints.append((item, mask))

    # (reached set, search complete?) per start mask
    reach_cache: Dict[int, Tuple[Set[int], bool]] = {}

    def reachable(start: int) -> Tuple[Set[int], bool]:
        cached = reach_cache.get(start)
        if cached is None:
            seen = {start}
            frontier = [start]
            budget = LAZY_REACH_EXPANSIONS
            complete = True
            while frontier:
                if budget <= 0:
                    complete = False
                    break
                budget -= 1
                node = frontier.pop()
                for _action_id, _cost, nxt in lazy.successors(node):
                    if nxt not in seen:
                        seen.add(nxt)
                        frontier.append(nxt)
            cached = (seen, complete)
            reach_cache[start] = cached
        return cached

    def verdict(start: int, goal: int) -> Optional[bool]:
        seen, complete = reachable(start)
        if goal in seen:
            return True
        return False if complete else None

    for index, (first, first_mask) in enumerate(endpoints):
        for second, second_mask in endpoints[index + 1:]:
            if first_mask == second_mask:
                continue
            forward = verdict(first_mask, second_mask)
            backward = verdict(second_mask, first_mask)
            if forward is True and backward is True:
                continue
            if forward is None or backward is None:
                report.skipped.append(
                    f"SA306 inconclusive for {first.name!r} <-> "
                    f"{second.name!r}: lazy reachability budget "
                    f"({LAZY_REACH_EXPANSIONS} nodes) exhausted"
                )
                continue
            if not forward and not backward:
                report.add(
                    "SA306",
                    f"no safe adaptation path exists between configurations "
                    f"{first.name!r} and {second.name!r} in either direction",
                    second.span,
                    path,
                    related=[Related("the other endpoint", first.span)],
                )
            else:
                src, dst = (second, first) if forward else (first, second)
                report.add(
                    "SA306",
                    f"configuration {dst.name!r} is unreachable from "
                    f"{src.name!r} (one-way: only the reverse direction has "
                    "a safe path)",
                    dst.span,
                    path,
                    related=[Related("unreachable from here", src.span)],
                    severity=Severity.NOTE,
                )


# -- stage 4: temporal properties (SA5xx) ---------------------------------------


def _check_properties(
    model: _Model,
    report: LintReport,
    path: Optional[str],
    max_enum_components: Optional[int] = None,
) -> None:
    """Path-quantified property checks over the ``[properties]`` section.

    Each property is compiled once (:class:`~repro.ltl.compile.CompiledProperty`)
    and then checked at two granularities:

    * **SA501** — single-state satisfiability: a property that holds on
      *no* safe configuration fails every path check at the very first
      configuration, which almost always means the formula (not the
      paths) is wrong.  Needs the enumerated safe space, so above the
      enumeration cap it is skipped (recorded in ``report.skipped``).
    * **SA502/SA503** — for every ordered pair of distinct safe named
      configurations, ``∀ k-best paths`` checking via
      :func:`repro.ltl.paths.verify_paths`: a violation on the optimal
      path is SA502, on a later alternate SA503 (with the minimized
      counterexample prefix in the message).  Above the cap the check
      runs on the lazy frontier with the default expansion budget;
      an exhausted budget yields **SA504** (a note — inconclusive is
      not a finding).

    Properties that already fired SA501 are excluded from the path
    checks: every path verdict would restate the same defect.
    """
    if not model.properties:
        return
    from repro.core.actions import ActionLibrary
    from repro.core.planner import AdaptationPlanner
    from repro.core.space import LazySafeSpace, SafeConfigurationSpace
    from repro.ltl.compile import CompiledProperty
    from repro.ltl.paths import DEFAULT_K, verify_paths

    cap = MAX_ENUM_COMPONENTS if max_enum_components is None else max_enum_components
    universe = model.universe
    invariants = model.kept_invariants()
    bits = universe.atom_bits
    compiled = {
        item.name: CompiledProperty(item.formula, bits)
        for item in model.properties
    }

    lazy_mode = len(universe) > cap
    unsatisfiable: Set[str] = set()
    if lazy_mode:
        report.skipped.append(
            f"SA501 skipped: {len(universe)} components exceed the "
            f"{cap}-component enumeration cap"
        )
        space = LazySafeSpace(universe, invariants)
    else:
        space = SafeConfigurationSpace(universe, invariants)
        safe_masks = space.enumerate_masks()
        if not safe_masks:
            report.skipped.append("SA5xx skipped: empty safe space")
            return
        for item in model.properties:
            holds_on = compiled[item.name].holds_on
            if not any(holds_on(mask) for mask in safe_masks):
                unsatisfiable.add(item.name)
                report.add(
                    "SA501",
                    f"property {item.name!r} holds on none of the "
                    f"{len(safe_masks)} safe configuration(s): every "
                    "path-quantified check fails at its first "
                    "configuration, so the formula itself is the defect",
                    item.span,
                    path,
                )

    endpoints: List[_ConfigItem] = []
    for cfg_item in model.configurations:
        try:
            mask = universe.mask_of(cfg_item.configuration)
        except Exception:
            continue
        if space.is_safe_mask(mask):
            endpoints.append(cfg_item)

    if len(endpoints) < 2:
        return
    planner = AdaptationPlanner(
        universe,
        invariants,
        ActionLibrary(item.action for item in model.actions),
    )
    for prop in model.properties:
        if prop.name in unsatisfiable:
            continue
        for src_item in endpoints:
            for dst_item in endpoints:
                if src_item is dst_item:
                    continue
                verdict = verify_paths(
                    planner,
                    src_item.configuration,
                    dst_item.configuration,
                    prop.formula,
                    "all",
                    DEFAULT_K,
                    lazy=lazy_mode,
                    compiled=compiled[prop.name],
                )
                if verdict.holds is None:
                    report.add(
                        "SA504",
                        f"path-quantified check of property {prop.name!r} "
                        f"from {src_item.name!r} to {dst_item.name!r} is "
                        f"inconclusive: {verdict.reason} — raise the budget "
                        "or check the pair with 'repro verify-paths'",
                        prop.span,
                        path,
                    )
                    continue
                if verdict.holds:
                    continue
                counter = verdict.counterexample
                prefix = ", ".join(counter.action_ids) or "<empty>"
                related = [
                    Related("path source", src_item.span),
                    Related("path target", dst_item.span),
                ]
                if verdict.paths_checked == 1:
                    report.add(
                        "SA502",
                        f"property {prop.name!r} is violated on the optimal "
                        f"adaptation path from {src_item.name!r} to "
                        f"{dst_item.name!r}: fails at configuration "
                        f"{verdict.violation_index + 1} after step(s) "
                        f"[{prefix}]",
                        prop.span,
                        path,
                        related=related,
                    )
                else:
                    report.add(
                        "SA503",
                        f"property {prop.name!r} is violated on k-best path "
                        f"{verdict.paths_checked} (k={DEFAULT_K}) from "
                        f"{src_item.name!r} to {dst_item.name!r}: "
                        f"counterexample prefix [{prefix}] (cost "
                        f"{counter.total_cost:g}) fails at configuration "
                        f"{verdict.violation_index + 1}",
                        prop.span,
                        path,
                        related=related,
                    )


# -- stage 5: runtime contracts (SA4xx) -----------------------------------------


def _check_contracts(model: _Model, report: LintReport, path: Optional[str]) -> None:
    for index, entry in enumerate(model.ccs):
        for other in model.ccs[index + 1:]:
            if entry.actions == other.actions:
                report.add(
                    "SA401",
                    f"ccs sequence {other.label or other.actions!r} duplicates "
                    f"an earlier allowed sequence",
                    other.span,
                    path,
                    related=[Related("first allowed here", entry.span)],
                )
            elif entry.actions == other.actions[: len(entry.actions)]:
                report.add(
                    "SA401",
                    f"ccs sequence {entry.label or entry.actions!r} is a "
                    f"proper prefix of {other.label or other.actions!r}: a "
                    '"complete" verdict is never final, so online '
                    "enforcement cannot trust it",
                    entry.span,
                    path,
                    related=[Related("extended by this sequence", other.span)],
                )
            elif other.actions == entry.actions[: len(other.actions)]:
                report.add(
                    "SA401",
                    f"ccs sequence {other.label or other.actions!r} is a "
                    f"proper prefix of {entry.label or entry.actions!r}: a "
                    '"complete" verdict is never final, so online '
                    "enforcement cannot trust it",
                    other.span,
                    path,
                    related=[Related("extended by this sequence", entry.span)],
                )

    universe = model.universe
    all_processes = frozenset(universe.processes())
    invariants = model.kept_invariants()
    for item in model.actions:
        action = item.action
        participants = action.participants(universe)
        if len(all_processes) > 1 and participants == all_processes:
            report.add(
                "SA402",
                f"action {action.action_id!r} touches components on every "
                f"process ({', '.join(sorted(participants))}): realizing it "
                "blocks the whole system at once, so no process stays "
                "available during the adaptation",
                item.span,
                path,
            )
        radius = blast_radius(universe, invariants, action)
        beyond = radius - participants
        if beyond:
            at_risk = invariants_at_risk(invariants, action)
            report.add(
                "SA403",
                f"action {action.action_id!r} has a blast radius beyond its "
                f"participants: processes {', '.join(sorted(beyond))} host "
                f"components coupled through {len(at_risk)} at-risk "
                "invariant(s) and must be watched during realization",
                item.span,
                path,
            )


# -- entry points ---------------------------------------------------------------


def analyze_source(
    source: ManifestSource,
    max_enum_components: Optional[int] = None,
    workers: Optional[int] = None,
) -> LintReport:
    """Run the full SA1xx–SA4xx pipeline over a scanned manifest.

    Args:
        max_enum_components: per-run override of the SA3xx enumeration
            cap (``None`` uses :data:`MAX_ENUM_COMPONENTS`).
        workers: process-pool size for the safe-space enumeration.
    """
    report = LintReport()
    model = _collect(source, report)
    if model is not None:
        path = source.path
        cap = (
            MAX_ENUM_COMPONENTS
            if max_enum_components is None
            else max_enum_components
        )
        _check_invariants(model, report, path)
        action_info = _check_actions(
            model,
            report,
            path,
            max_enum_components=max_enum_components,
            workers=workers,
            fixes_enabled=True,
        )
        check_interference(
            model,
            report,
            path,
            action_info,
            cap_exceeded=len(model.universe) > cap,
            line_count=source.line_count,
            fixes_enabled=True,
        )
        _check_properties(
            model, report, path, max_enum_components=max_enum_components
        )
        _check_contracts(model, report, path)
    report.sort()
    return report


def analyze_system(
    manifest: SystemManifest,
    path: Optional[str] = None,
    max_enum_components: Optional[int] = None,
    workers: Optional[int] = None,
) -> LintReport:
    """Analyze an in-memory ``P`` (semantic stages SA2xx–SA4xx + SA108).

    Well-formedness is enforced by the constructors for in-memory models;
    spans come from ``manifest.spans`` when the manifest was parsed from
    a file, and default to line 1 otherwise.
    """
    report = LintReport()
    spans = manifest.spans
    path = path if path is not None else spans.path
    model = _Model(universe=manifest.universe, sections=dict(spans.sections))
    invariant_spans = spans.invariants or ()
    for index, invariant in enumerate(manifest.invariants):
        span = (
            invariant_spans[index]
            if index < len(invariant_spans)
            else Span(1, 1)
        )
        model.invariants.append(_InvariantItem(invariant, span))
    for action in manifest.actions:
        model.actions.append(
            _ActionItem(action, spans.actions.get(action.action_id, Span(1, 1)))
        )
    for name, configuration in manifest.configurations.items():
        model.configurations.append(
            _ConfigItem(
                name, configuration, spans.configurations.get(name, Span(1, 1))
            )
        )
    if manifest.ccs is not None:
        model.ccs = [
            CCSEntry(label=f"seg{index}", actions=sequence, span=Span(1, 1))
            for index, sequence in enumerate(manifest.ccs.allowed)
        ]
    for name, formula in manifest.properties.items():
        model.properties.append(
            _PropertyItem(name, formula, spans.properties.get(name, Span(1, 1)))
        )
    if model.invariants or model.actions:
        referenced: Set[str] = set()
        for item in model.invariants:
            referenced |= item.invariant.atoms()
        for act_item in model.actions:
            referenced |= act_item.action.touched
        for name in model.universe.order:
            if name not in referenced:
                report.add(
                    "SA108",
                    f"component {name!r} is not constrained by any invariant "
                    "nor touched by any action",
                    spans.components.get(name, Span(1, 1)),
                    path,
                )
    model.conflicts = list(manifest.conflicts)
    cap = (
        MAX_ENUM_COMPONENTS
        if max_enum_components is None
        else max_enum_components
    )
    _check_invariants(model, report, path)
    action_info = _check_actions(
        model,
        report,
        path,
        max_enum_components=max_enum_components,
        workers=workers,
    )
    check_interference(
        model,
        report,
        path,
        action_info,
        cap_exceeded=len(model.universe) > cap,
    )
    _check_properties(
        model, report, path, max_enum_components=max_enum_components
    )
    _check_contracts(model, report, path)
    report.sort()
    return report
