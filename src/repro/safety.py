"""Executable safety checker — the paper's §3 definition, run over traces.

    "A dynamic adaptation process is safe iff
       – It does not violate dependency relationships among components.
       – It does not interrupt critical communication segments."

Given an execution :class:`~repro.trace.Trace`, the checker verifies:

1. **Dependency clause** — every committed configuration satisfies every
   invariant (safe configurations only, per §3.1).
2. **CCS clause** — for every CID, ``S_CID ∈ CCS`` (or the segment is still
   a live prefix at the instant the trace ends), and no application-level
   corruption was recorded (corruption is the observable symptom of an
   interrupted segment).
3. **Global-safe-state discipline** (optional, on by default) — every
   local in-action fired while its hosting process was blocked, i.e. held
   in a safe state, per §3.3's equivalence proof.

Baseline strategies in :mod:`repro.baselines` demonstrably fail these
checks; the safe-adaptation protocol passes them under randomized
schedules and injected faults (see ``tests/protocol`` and
``benchmarks/bench_safety_vs_baselines.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.ccs import CCSSpec
from repro.core.invariants import InvariantSet
from repro.errors import SafetyViolationError
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    Trace,
)


@dataclass(frozen=True)
class Violation:
    """One piece of evidence that an execution was unsafe."""

    kind: str  # "dependency" | "ccs" | "corruption" | "discipline"
    time: float
    detail: str


@dataclass
class SafetyReport:
    """Checker output: list of violations plus summary counters."""

    violations: List[Violation] = field(default_factory=list)
    configurations_checked: int = 0
    segments_checked: int = 0
    segments_complete: int = 0
    in_actions_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_kind(self, kind: str) -> Tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.kind == kind)

    def raise_if_unsafe(self) -> None:
        if not self.ok:
            first = self.violations[0]
            raise SafetyViolationError(
                f"{len(self.violations)} safety violation(s); first: "
                f"[{first.kind} @ t={first.time:g}] {first.detail}"
            )

    def summary(self) -> str:
        status = "SAFE" if self.ok else f"UNSAFE ({len(self.violations)} violations)"
        return (
            f"{status} — {self.configurations_checked} configurations, "
            f"{self.segments_complete}/{self.segments_checked} segments complete, "
            f"{self.in_actions_checked} in-actions checked"
        )


class SafetyChecker:
    """Judges traces against the paper's two-clause safety definition."""

    def __init__(
        self,
        invariants: InvariantSet,
        ccs: Optional[CCSSpec] = None,
        check_discipline: bool = True,
    ):
        self.invariants = invariants
        self.ccs = ccs
        self.check_discipline = check_discipline

    def check(self, trace: Trace) -> SafetyReport:
        report = SafetyReport()
        self._check_dependencies(trace, report)
        if self.ccs is not None:
            self._check_segments(trace, report)
        self._check_corruption(trace, report)
        if self.check_discipline:
            self._check_discipline(trace, report)
        return report

    # -- clause 1: dependency relationships -------------------------------------
    def _check_dependencies(self, trace: Trace, report: SafetyReport) -> None:
        for record in trace.of_type(ConfigCommitted):
            report.configurations_checked += 1
            broken = self.invariants.violated(record.configuration)
            for invariant in broken:
                members = "{" + ",".join(sorted(record.configuration)) + "}"
                report.violations.append(
                    Violation(
                        kind="dependency",
                        time=record.time,
                        detail=(
                            f"configuration {members} (step {record.step_id}) "
                            f"violates invariant {invariant.name!r}"
                        ),
                    )
                )

    # -- clause 2: critical communication segments ---------------------------------
    def _check_segments(self, trace: Trace, report: SafetyReport) -> None:
        assert self.ccs is not None
        last_time: Dict[int, float] = {}
        for record in trace.of_type(CommRecord):
            last_time[record.cid] = record.time
        for verdict in self.ccs.judge_trace(trace):
            report.segments_checked += 1
            if verdict.complete:
                report.segments_complete += 1
            elif verdict.interrupted:
                report.violations.append(
                    Violation(
                        kind="ccs",
                        time=last_time.get(verdict.cid, 0.0),
                        detail=(
                            f"segment CID={verdict.cid} interrupted: observed "
                            f"{list(verdict.sequence)} is not in CCS"
                        ),
                    )
                )
            # else: in progress at end of trace — permitted.

    def _check_corruption(self, trace: Trace, report: SafetyReport) -> None:
        for record in trace.of_type(CorruptionRecord):
            report.violations.append(
                Violation(
                    kind="corruption",
                    time=record.time,
                    detail=f"[{record.process}] {record.detail}",
                )
            )

    # -- clause 3 (derived): in-actions only in held-safe processes ------------------
    def _check_discipline(self, trace: Trace, report: SafetyReport) -> None:
        blocked: Dict[str, bool] = {}
        for record in trace:
            if isinstance(record, BlockRecord):
                blocked[record.process] = record.blocked
            elif isinstance(record, AdaptationApplied):
                report.in_actions_checked += 1
                if not blocked.get(record.process, False):
                    report.violations.append(
                        Violation(
                            kind="discipline",
                            time=record.time,
                            detail=(
                                f"in-action {record.action_id} executed on "
                                f"process {record.process!r} while it was not "
                                "held in a safe (blocked) state"
                            ),
                        )
                    )


def check_safe(
    trace: Trace,
    invariants: InvariantSet,
    ccs: Optional[CCSSpec] = None,
    check_discipline: bool = True,
) -> SafetyReport:
    """One-shot convenience wrapper around :class:`SafetyChecker`."""
    checker = SafetyChecker(invariants, ccs=ccs, check_discipline=check_discipline)
    return checker.check(trace)
