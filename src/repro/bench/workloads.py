"""Workload generators for benchmarks and property tests.

Two families:

* :func:`replicated_video_system` — *n* independent copies of the paper's
  video model (suffix ``@g<i>``).  Safe-configuration count grows as
  ``8^n`` and the monolithic SAG explodes exactly as §7 warns, while the
  collaborative decomposition and lazy A* planners scale linearly — the
  scalability experiment (exp C3 in DESIGN.md).
* :func:`random_system` — seeded random universes/invariants/actions for
  property-based testing of the planner (plans, when they exist, must be
  valid regardless of the instance).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.video.system import (
    PAPER_SOURCE_BITS,
    PAPER_TARGET_BITS,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import DependencyInvariant, Invariant, InvariantSet
from repro.core.model import Component, ComponentUniverse, Configuration
from repro.expr import Atom, Expr, exactly_one
from repro.expr.ast import And, Implies, Not, Or, Xor


@dataclass
class RandomSystem:
    """A generated planning instance."""

    universe: ComponentUniverse
    invariants: InvariantSet
    actions: ActionLibrary
    source: Configuration
    target: Configuration


def replicated_video_system(n_groups: int) -> RandomSystem:
    """*n* independent copies of the §5 video model.

    Components, invariants, and actions of group *i* carry the suffix
    ``@g<i>`` and never interact across groups, so
    :func:`repro.core.collaborative.collaborative_sets` recovers exactly
    the groups.
    """
    if n_groups <= 0:
        raise ValueError("n_groups must be positive")
    base_universe = video_universe()
    base_actions = video_actions()
    components: List[Component] = []
    invariants: List[Invariant] = []
    actions: List[AdaptiveAction] = []
    source_members: List[str] = []
    target_members: List[str] = []
    source_config = base_universe.from_bits(PAPER_SOURCE_BITS)
    target_config = base_universe.from_bits(PAPER_TARGET_BITS)
    for group in range(n_groups):
        suffix = f"@g{group}"
        for component in base_universe:
            components.append(
                Component(
                    component.name + suffix,
                    process=component.process + suffix,
                    description=component.description,
                )
            )
        invariants.append(
            Invariant(
                exactly_one(*(f"D{i}{suffix}" for i in (1, 2, 3))),
                name=f"resource{suffix}",
            )
        )
        invariants.append(
            Invariant(
                exactly_one(f"E1{suffix}", f"E2{suffix}"), name=f"security{suffix}"
            )
        )
        invariants.append(
            DependencyInvariant(
                Implies(
                    Atom(f"E1{suffix}"),
                    And((Or((Atom(f"D1{suffix}"), Atom(f"D2{suffix}"))), Atom(f"D4{suffix}"))),
                )
            )
        )
        invariants.append(
            DependencyInvariant(
                Implies(
                    Atom(f"E2{suffix}"),
                    And((Or((Atom(f"D3{suffix}"), Atom(f"D2{suffix}"))), Atom(f"D5{suffix}"))),
                )
            )
        )
        for action in base_actions:
            actions.append(
                AdaptiveAction(
                    action.action_id + suffix,
                    frozenset(name + suffix for name in action.removes),
                    frozenset(name + suffix for name in action.adds),
                    action.cost,
                    action.description + suffix,
                )
            )
        source_members.extend(name + suffix for name in source_config.members)
        target_members.extend(name + suffix for name in target_config.members)
    return RandomSystem(
        universe=ComponentUniverse(components),
        invariants=InvariantSet(invariants),
        actions=ActionLibrary(actions),
        source=Configuration(source_members),
        target=Configuration(target_members),
    )


def enumeration_stress_system(
    n_components: int,
    n_constraints: Optional[int] = None,
    arity: int = 5,
    seed: int = 7,
) -> RandomSystem:
    """A universe adversarial for the three-valued backtracking pruner.

    Every invariant is an :class:`Xor` whose final atom sits in the last
    few components of the universe order: under three-valued evaluation
    an xor stays *undetermined* until its last atom is decided, so the
    enumerator must traverse the full prefix tree before any branch can
    be pruned — per-node invariant work is high, the safe set collapses
    only at the bottom (each xor halves it, so output stays small), and
    partitions on the high-bit prefix carry near-identical work.  That
    shape is exactly what the parallel enumeration benchmarks need:
    serial cost grows with ``2^n`` while the result (and hence the
    serial merge in the parent) stays a few thousand masks.

    ``source``/``target`` are the all-absent/all-present placeholder
    configurations — enumeration benchmarks do not plan over this
    system.
    """
    if n_components < 8:
        raise ValueError("stress universes need at least 8 components")
    rng = random.Random(seed)
    n = n_components
    if n_constraints is None:
        n_constraints = n // 2
    names = [f"X{i:02d}" for i in range(n)]
    universe = ComponentUniverse.from_names(
        names, {name: f"p{i % 4}" for i, name in enumerate(names)}
    )
    tail = max(2, n // 5)
    invariants: List[Invariant] = []
    for index in range(n_constraints):
        last = names[n - 1 - (index % tail)]
        body = rng.sample(names[: n - tail], arity - 1)
        invariants.append(
            Invariant(
                Xor(tuple(Atom(name) for name in (*body, last))),
                name=f"xor{index}",
            )
        )
    actions = ActionLibrary(
        [
            AdaptiveAction.insert(f"I{i}", name, float(1 + i % 5))
            for i, name in enumerate(names)
        ]
        + [
            AdaptiveAction.remove(f"D{i}", name, float(1 + i % 5))
            for i, name in enumerate(names)
        ]
    )
    return RandomSystem(
        universe=universe,
        invariants=InvariantSet(invariants),
        actions=actions,
        source=Configuration([]),
        target=Configuration(names),
    )


def _random_expr(rng: random.Random, names: List[str], depth: int = 2) -> Expr:
    if depth <= 0 or rng.random() < 0.4:
        return Atom(rng.choice(names))
    kind = rng.choice(("and", "or", "not", "implies"))
    if kind == "not":
        return Not(_random_expr(rng, names, depth - 1))
    left = _random_expr(rng, names, depth - 1)
    right = _random_expr(rng, names, depth - 1)
    if kind == "and":
        return And((left, right))
    if kind == "or":
        return Or((left, right))
    return Implies(left, right)


def random_system(
    seed: int,
    n_components: int = 6,
    n_invariants: int = 3,
    n_actions: int = 10,
    n_processes: int = 3,
) -> RandomSystem:
    """Seeded random planning instance (for property tests).

    The source and target configurations are drawn from the safe set when
    one exists (falling back to arbitrary subsets otherwise, which lets
    tests exercise the unsafe-endpoint error paths too).
    """
    rng = random.Random(seed)
    names = [f"C{i}" for i in range(n_components)]
    processes = {name: f"p{rng.randrange(n_processes)}" for name in names}
    universe = ComponentUniverse.from_names(names, processes)
    invariants = InvariantSet(
        [Invariant(_random_expr(rng, names), name=f"inv{i}") for i in range(n_invariants)]
    )
    actions: List[AdaptiveAction] = []
    for index in range(n_actions):
        kind = rng.choice(("insert", "remove", "replace"))
        cost = float(rng.randrange(1, 30))
        if kind == "insert":
            actions.append(AdaptiveAction.insert(f"R{index}", rng.choice(names), cost))
        elif kind == "remove":
            actions.append(AdaptiveAction.remove(f"R{index}", rng.choice(names), cost))
        else:
            old, new = rng.sample(names, 2)
            actions.append(AdaptiveAction.replace(f"R{index}", old, new, cost))
    safe: List[Configuration] = []
    for config in universe.all_configurations():
        if invariants.all_hold(config):
            safe.append(config)
        if len(safe) >= 64:
            break
    if len(safe) >= 2:
        source, target = rng.sample(safe, 2)
    elif safe:
        source = target = safe[0]
    else:
        source = Configuration(rng.sample(names, max(1, n_components // 2)))
        target = Configuration(rng.sample(names, max(1, n_components // 2)))
    return RandomSystem(universe, invariants, ActionLibrary(actions), source, target)
