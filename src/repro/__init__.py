"""repro — Safe Dynamic Component-Based Software Adaptation.

A complete reproduction of Zhang, Cheng, Yang & McKinley, *Enabling Safe
Dynamic Component-Based Software Adaptation* (DSN 2004 / Architecting
Dependable Systems III, 2005): the dependency-driven safe-adaptation
method (safe configurations, Safe Adaptation Graph, Minimum Adaptation
Path), the manager/agent realization protocol with timeout-driven failure
handling and rollback, an executable two-clause safety checker, and the
full video-multicast case study on a deterministic discrete-event
simulator plus a threaded live runtime.

Quickstart::

    from repro import (ComponentUniverse, InvariantSet, ActionLibrary,
                       AdaptiveAction, AdaptationPlanner)

    universe = ComponentUniverse.from_names(["A", "B1", "B2"])
    invariants = InvariantSet.of("A -> B1 | B2", "one_of(B1, B2)", "A")
    actions = ActionLibrary([AdaptiveAction.replace("swap", "B1", "B2", cost=5)])
    planner = AdaptationPlanner(universe, invariants, actions)
    plan = planner.plan(universe.configuration("A", "B1"),
                        universe.configuration("A", "B2"))
    print(plan.describe())

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core import (
    ActionKind,
    ActionLibrary,
    AdaptationPlan,
    AdaptationPlanner,
    AdaptiveAction,
    Component,
    ComponentUniverse,
    Configuration,
    DependencyInvariant,
    Invariant,
    InvariantSet,
    PlanStep,
    SafeAdaptationGraph,
    SafeConfigurationSpace,
    StructuralInvariant,
    collaborative_sets,
)
from repro.ccs import CCSSpec, SegmentTracker
from repro.errors import (
    AdaptationAbortedError,
    NoSafePathError,
    ReproError,
    SafetyViolationError,
    UnsafeConfigurationError,
    UserInterventionRequired,
)
from repro.core.analysis import (
    affected_components,
    blast_radius,
    impact_report,
    invariants_at_risk,
)
from repro.expr import parse as parse_expr
from repro.render import render_events, render_timeline
from repro.safety import SafetyChecker, SafetyReport, check_safe
from repro.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Component",
    "ComponentUniverse",
    "Configuration",
    "Invariant",
    "StructuralInvariant",
    "DependencyInvariant",
    "InvariantSet",
    "ActionKind",
    "AdaptiveAction",
    "ActionLibrary",
    "SafeConfigurationSpace",
    "SafeAdaptationGraph",
    "AdaptationPlanner",
    "AdaptationPlan",
    "PlanStep",
    "collaborative_sets",
    "CCSSpec",
    "SegmentTracker",
    "SafetyChecker",
    "SafetyReport",
    "check_safe",
    "Trace",
    "invariants_at_risk",
    "affected_components",
    "blast_radius",
    "impact_report",
    "render_events",
    "render_timeline",
    "parse_expr",
    "ReproError",
    "NoSafePathError",
    "UnsafeConfigurationError",
    "AdaptationAbortedError",
    "UserInterventionRequired",
    "SafetyViolationError",
]
