"""Bitset-backed safety memo and result-plane scanning.

The enumeration engine's unit of exchange is a **bitset plane**: a byte
buffer with one bit per presence mask, bit index == mask value (the
universe's bit-vector encoding makes the mask an integer in
``[0, 2^n)``, so the plane is dense and ascending bit order equals the
serial enumeration order).  Workers set the bits of their partition's
safe masks directly in a ``multiprocessing.shared_memory`` block; the
parent ORs the plane into its memo in bulk and scans set bits with
``int.bit_count`` instead of unpickling mask tuples.

:class:`SafetyMemo` is the hybrid memo table shared by
:class:`~repro.core.space.SafeConfigurationSpace` and
:class:`~repro.core.space.LazySafeSpace`.  For universes of at most
:data:`MAX_BITSET_COMPONENTS` bits it stores verdicts in two lazily
allocated bytearrays (known / safe — 2 bits per mask, at most 2 x 2 MiB
at the cap) so plane merges are single bulk integer ORs; above the cap
it degrades to the plain dict the memo always was.  The interface is
dict-compatible (``get`` / ``[]`` / ``in`` / ``len`` / ``items``) so
every existing consumer keeps working unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

#: beyond this many components the dense bitset backing (2 bits per mask)
#: would cross the low-megabyte line; fall back to the sparse dict
MAX_BITSET_COMPONENTS = 24


def plane_size(n_components: int) -> int:
    """Bytes needed for a one-bit-per-mask plane over *n_components*."""
    return max(1, (1 << n_components) >> 3)


def iter_plane_masks(plane: bytes) -> Iterator[int]:
    """Yield the set bit indexes (== masks) of *plane* in ascending order.

    Scans 64-bit words and extracts set bits with ``w & -w``, so cost is
    proportional to the number of *safe* masks plus the word count — not
    to ``2^n`` Python-level bit tests.
    """
    words = len(plane) >> 3
    if words:
        view = memoryview(plane)[: words << 3].cast("Q")
        for word_index in range(words):
            w = view[word_index]
            if not w:
                continue
            base = word_index << 6
            while w:
                lsb = w & -w
                yield base + lsb.bit_length() - 1
                w ^= lsb
    for byte_index in range(words << 3, len(plane)):
        b = plane[byte_index]
        base = byte_index << 3
        while b:
            lsb = b & -b
            yield base + lsb.bit_length() - 1
            b ^= lsb


def set_plane_bits(buf, masks) -> None:
    """Set ``buf`` bit *mask* for every mask (LSB-first within a byte)."""
    for mask in masks:
        buf[mask >> 3] |= 1 << (mask & 7)


class SafetyMemo:
    """Hybrid mask -> safety-verdict table (bitset small, dict large).

    Semantically a ``Dict[int, bool]`` that only ever holds masks whose
    verdict has been computed.  The bitset backing keeps two parallel
    bit planes — *known* (the mask has a verdict) and *safe* (the
    verdict is True) — allocated on first write so an untouched memo
    costs nothing.  :meth:`or_safe_plane` merges a worker's result plane
    as two whole-buffer integer ORs, which is what makes the
    shared-memory merge O(plane bytes / word size) instead of O(masks).
    """

    __slots__ = ("_dict", "_known", "_safe", "_size", "_count")

    def __init__(self, n_components: Optional[int] = None):
        self._dict: Optional[Dict[int, bool]] = None
        self._known: Optional[bytearray] = None
        self._safe: Optional[bytearray] = None
        self._size = 0
        self._count = 0
        if n_components is None or n_components > MAX_BITSET_COMPONENTS:
            self._dict = {}
        else:
            self._size = plane_size(n_components)

    @property
    def backing(self) -> str:
        """``"bitset"`` or ``"dict"`` — exposed for stats and tests."""
        return "dict" if self._dict is not None else "bitset"

    def _ensure_planes(self) -> None:
        if self._known is None:
            self._known = bytearray(self._size)
            self._safe = bytearray(self._size)

    # -- dict-compatible interface ---------------------------------------------
    def get(self, mask: int, default=None):
        if self._dict is not None:
            return self._dict.get(mask, default)
        if self._known is None:
            return default
        if not (self._known[mask >> 3] >> (mask & 7)) & 1:
            return default
        return bool((self._safe[mask >> 3] >> (mask & 7)) & 1)  # type: ignore[index]

    def __getitem__(self, mask: int) -> bool:
        verdict = self.get(mask)
        if verdict is None:
            raise KeyError(mask)
        return verdict

    def __setitem__(self, mask: int, verdict: bool) -> None:
        if self._dict is not None:
            self._dict[mask] = verdict
            return
        self._ensure_planes()
        byte, bit = mask >> 3, 1 << (mask & 7)
        known = self._known
        assert known is not None and self._safe is not None
        if not known[byte] & bit:
            known[byte] |= bit
            self._count += 1
        if verdict:
            self._safe[byte] |= bit
        else:
            self._safe[byte] &= ~bit

    def __contains__(self, mask: int) -> bool:
        return self.get(mask) is not None

    def __len__(self) -> int:
        if self._dict is not None:
            return len(self._dict)
        return self._count

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[int]:
        if self._dict is not None:
            return iter(self._dict)
        if self._known is None:
            return iter(())
        return iter_plane_masks(bytes(self._known))

    def keys(self) -> Iterator[int]:
        return iter(self)

    def items(self) -> Iterator[Tuple[int, bool]]:
        if self._dict is not None:
            yield from self._dict.items()
            return
        if self._known is None:
            return
        safe = self._safe
        assert safe is not None
        for mask in iter_plane_masks(bytes(self._known)):
            yield mask, bool((safe[mask >> 3] >> (mask & 7)) & 1)

    # -- bulk plane merge --------------------------------------------------------
    def or_safe_plane(self, plane: bytes) -> int:
        """OR a safe-verdict *plane* into the memo; returns new verdicts.

        Every set bit becomes a ``True`` entry (set bits are known-safe
        by construction — workers only write proven-safe masks).  On the
        bitset backing this is two big-integer ORs over the whole
        buffer; on the dict backing it falls back to a bit scan.
        """
        if self._dict is not None:
            added = 0
            memo = self._dict
            for mask in iter_plane_masks(plane):
                if mask not in memo:
                    added += 1
                memo[mask] = True
            return added
        if len(plane) != self._size:
            raise ValueError(
                f"plane is {len(plane)} bytes; memo expects {self._size}"
            )
        self._ensure_planes()
        assert self._known is not None and self._safe is not None
        incoming = int.from_bytes(plane, "little")
        known = int.from_bytes(self._known, "little")
        added = (incoming & ~known).bit_count()
        if added:
            self._known[:] = (known | incoming).to_bytes(self._size, "little")
            self._count += added
        # OR the safe plane unconditionally: a set bit is a True verdict
        # even for masks already known (matching the dict fallback)
        safe = int.from_bytes(self._safe, "little")
        self._safe[:] = (safe | incoming).to_bytes(self._size, "little")
        return added
