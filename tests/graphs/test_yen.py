"""Unit tests for Yen's k-shortest loopless paths."""

import pytest

from repro.graphs import Digraph, k_shortest_paths
from repro.graphs.yen import iter_shortest_paths


@pytest.fixture
def grid():
    # Classic Yen example-ish graph with multiple distinct a→f routes.
    g = Digraph()
    edges = [
        ("a", "b", 3), ("a", "c", 2),
        ("b", "d", 4), ("c", "d", 1), ("c", "e", 2),
        ("d", "f", 2), ("e", "d", 1), ("e", "f", 5),
    ]
    for src, dst, w in edges:
        g.add_edge(src, dst, f"{src}{dst}", float(w))
    return g


class TestKShortest:
    def test_first_path_is_shortest(self, grid):
        paths = k_shortest_paths(grid, "a", "f", 1)
        assert len(paths) == 1
        assert paths[0].cost == 5.0  # a-c-d-f
        assert paths[0].nodes == ("a", "c", "d", "f")

    def test_costs_non_decreasing(self, grid):
        paths = k_shortest_paths(grid, "a", "f", 6)
        costs = [p.cost for p in paths]
        assert costs == sorted(costs)

    def test_paths_distinct(self, grid):
        paths = k_shortest_paths(grid, "a", "f", 6)
        keys = {(p.nodes, p.labels) for p in paths}
        assert len(keys) == len(paths)

    def test_paths_loopless(self, grid):
        for path in k_shortest_paths(grid, "a", "f", 6):
            assert len(set(path.nodes)) == len(path.nodes)

    def test_expected_second_and_third(self, grid):
        paths = k_shortest_paths(grid, "a", "f", 3)
        assert paths[1].cost == 7.0  # a-c-e-d-f
        assert paths[2].cost == 9.0  # a-b-d-f or a-c-e-f

    def test_fewer_paths_than_k(self, grid):
        # There are finitely many loopless a→f paths.
        paths = k_shortest_paths(grid, "a", "f", 50)
        assert 3 <= len(paths) < 50

    def test_k_zero_and_unreachable(self, grid):
        assert k_shortest_paths(grid, "a", "f", 0) == []
        g = Digraph()
        g.add_node("x")
        g.add_node("y")
        assert k_shortest_paths(g, "x", "y", 3) == []

    def test_paths_are_valid_edge_chains(self, grid):
        for path in k_shortest_paths(grid, "a", "f", 6):
            assert path.nodes[0] == "a" and path.nodes[-1] == "f"
            for edge, (u, v) in zip(path.edges, zip(path.nodes, path.nodes[1:])):
                assert (edge.source, edge.target) == (u, v)
            assert path.cost == pytest.approx(sum(e.weight for e in path.edges))

    def test_parallel_edges_counted_separately(self):
        g = Digraph()
        g.add_edge("a", "b", "cheap", 1.0)
        g.add_edge("a", "b", "dear", 2.0)
        paths = k_shortest_paths(g, "a", "b", 5)
        assert [p.labels for p in paths] == [("cheap",), ("dear",)]

    def test_iter_wrapper(self, grid):
        lazy = list(iter_shortest_paths(grid, "a", "f", limit=2))
        assert [p.cost for p in lazy] == [5.0, 7.0]
