"""Unit tests for adaptive actions and the action library."""

import pytest

from repro.core.actions import (
    ActionBindings,
    ActionKind,
    ActionLibrary,
    AdaptiveAction,
    LocalActionBinding,
)
from repro.core.model import Configuration
from repro.errors import ActionError, ActionNotApplicableError, DuplicateActionError


class TestConstruction:
    def test_insert(self):
        action = AdaptiveAction.insert("A17", "D5", 10)
        assert action.kind == ActionKind.INSERT
        assert action.adds == frozenset({"D5"})
        assert action.description == "insert D5"

    def test_remove(self):
        action = AdaptiveAction.remove("A16", "D4", 10)
        assert action.kind == ActionKind.REMOVE

    def test_replace(self):
        action = AdaptiveAction.replace("A1", "E1", "E2", 10)
        assert action.kind == ActionKind.REPLACE
        assert action.touched == frozenset({"E1", "E2"})

    def test_replace_self_rejected(self):
        with pytest.raises(ActionError):
            AdaptiveAction.replace("bad", "X", "X", 1)

    def test_empty_delta_rejected(self):
        with pytest.raises(ActionError):
            AdaptiveAction("noop", frozenset(), frozenset(), 1)

    def test_overlapping_delta_rejected(self):
        with pytest.raises(ActionError):
            AdaptiveAction("bad", frozenset({"A"}), frozenset({"A"}), 1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ActionError):
            AdaptiveAction.insert("bad", "X", -1)

    def test_empty_id_rejected(self):
        with pytest.raises(ActionError):
            AdaptiveAction.insert("", "X", 1)


class TestCompose:
    def test_pair(self):
        a1 = AdaptiveAction.replace("A1", "E1", "E2", 10)
        a2 = AdaptiveAction.replace("A2", "D1", "D2", 10)
        pair = AdaptiveAction.compose("A6", [a1, a2], cost=100)
        assert pair.kind == ActionKind.COMPOSITE
        assert pair.removes == frozenset({"E1", "D1"})
        assert pair.adds == frozenset({"E2", "D2"})
        assert pair.cost == 100
        assert pair.description == "A1 and A2"

    def test_default_cost_is_sum(self):
        a1 = AdaptiveAction.insert("i", "X", 3)
        a2 = AdaptiveAction.insert("j", "Y", 4)
        assert AdaptiveAction.compose("c", [a1, a2]).cost == 7

    def test_conflicting_parts_rejected(self):
        a1 = AdaptiveAction.remove("r", "X", 1)
        a2 = AdaptiveAction.insert("i", "X", 1)
        with pytest.raises(ActionError):
            AdaptiveAction.compose("c", [a1, a2])

    def test_empty_composite_rejected(self):
        with pytest.raises(ActionError):
            AdaptiveAction.compose("c", [])


class TestSemantics:
    def test_applicable_and_apply(self):
        action = AdaptiveAction.replace("A1", "E1", "E2", 10)
        config = Configuration(["E1", "D4"])
        assert action.is_applicable(config)
        assert action.apply(config) == frozenset({"E2", "D4"})

    def test_not_applicable_when_remove_missing(self):
        action = AdaptiveAction.remove("r", "X", 1)
        assert not action.is_applicable(Configuration(["Y"]))
        with pytest.raises(ActionNotApplicableError):
            action.apply(Configuration(["Y"]))

    def test_not_applicable_when_add_present(self):
        action = AdaptiveAction.insert("i", "X", 1)
        assert not action.is_applicable(Configuration(["X"]))

    def test_inverse_round_trips(self):
        action = AdaptiveAction.replace("A1", "E1", "E2", 10)
        config = Configuration(["E1"])
        assert action.inverse().apply(action.apply(config)) == config
        assert action.inverse().action_id == "undo(A1)"

    def test_participants(self, universe):
        action = AdaptiveAction("A14", frozenset({"D1", "D4", "E1"}),
                                frozenset({"D3", "D5", "E2"}), 150)
        assert action.participants(universe) == frozenset(
            {"server", "handheld", "laptop"}
        )

    def test_operation_text(self):
        assert AdaptiveAction.replace("a", "E1", "E2", 1).operation_text() == "E1 -> E2"
        assert AdaptiveAction.remove("b", "D4", 1).operation_text() == "-D4"
        assert AdaptiveAction.insert("c", "D5", 1).operation_text() == "+D5"
        composite = AdaptiveAction("d", frozenset({"D1", "E1"}),
                                   frozenset({"D2", "E2"}), 1)
        assert composite.operation_text() == "(D1, E1) -> (D2, E2)"


class TestLibrary:
    def test_duplicate_id_rejected(self):
        lib = ActionLibrary([AdaptiveAction.insert("A", "X", 1)])
        with pytest.raises(DuplicateActionError):
            lib.add(AdaptiveAction.insert("A", "Y", 1))

    def test_lookup(self, actions):
        assert actions.get("A1").cost == 10
        with pytest.raises(ActionError):
            actions.get("A99")

    def test_contains_len_iter(self, actions):
        assert "A16" in actions
        assert len(actions) == 17
        assert [a.action_id for a in actions][:3] == ["A1", "A2", "A3"]

    def test_applicable_to(self, actions, source):
        ids = {a.action_id for a in actions.applicable_to(source)}
        # From {D1,D4,E1}: replaces of D1, E1, D4, composites, +D5.
        assert "A2" in ids and "A17" in ids and "A13" in ids
        assert "A4" not in ids  # D2 not present
        assert "A16" in ids  # remove D4 is applicable (safety is separate)

    def test_total_cost(self, actions):
        assert actions.total_cost(["A2", "A17", "A1", "A16", "A4"]) == 50

    def test_restricted_to(self, actions):
        sub = actions.restricted_to(frozenset({"E1", "E2"}))
        assert sub.ids() == ("A1",)


class TestGenerateComposites:
    def base(self):
        from repro.core.actions import generate_composites

        lib = ActionLibrary(
            [
                AdaptiveAction.replace("r1", "A", "B", 10),
                AdaptiveAction.replace("r2", "C", "D", 10),
                AdaptiveAction.replace("r3", "B", "C", 10),  # overlaps both
            ]
        )
        return lib, generate_composites

    def test_disjoint_pairs_generated(self):
        lib, generate = self.base()
        out = generate(lib, cost_fn=lambda parts: 100.0)
        assert "r1+r2" in out
        composite = out.get("r1+r2")
        assert composite.removes == frozenset({"A", "C"})
        assert composite.cost == 100.0

    def test_overlapping_pairs_skipped(self):
        lib, generate = self.base()
        out = generate(lib, cost_fn=lambda parts: 1.0)
        assert "r1+r3" not in out  # share B
        assert "r2+r3" not in out  # share C

    def test_base_untouched_and_included(self):
        lib, generate = self.base()
        out = generate(lib, cost_fn=lambda parts: 1.0)
        assert len(lib) == 3
        assert "r1" in out and len(out) == 4

    def test_table2_pairs_reconstructable(self, actions):
        """Generating pairs over A1–A5 with the paper's cost rule yields
        exactly Table 2's pair composites (module ids)."""
        from repro.core.actions import generate_composites

        singles = ActionLibrary([actions.get(f"A{i}") for i in range(1, 6)])

        def paper_cost(parts):
            # encoder+decoder pairs cost 100; decoder-only pairs cost 50
            touched = frozenset().union(*(p.touched for p in parts))
            return 100.0 if touched & {"E1", "E2"} else 50.0

        out = generate_composites(singles, cost_fn=paper_cost)
        generated = {
            (a.removes, a.adds): a.cost
            for a in out
            if a.kind == ActionKind.COMPOSITE
        }
        for pair_id in ("A6", "A7", "A8", "A9", "A10", "A11", "A12"):
            paper_action = actions.get(pair_id)
            key = (paper_action.removes, paper_action.adds)
            assert key in generated, pair_id
            assert generated[key] == paper_action.cost, pair_id

    def test_max_parts_validated(self):
        lib, generate = self.base()
        with pytest.raises(ActionError):
            generate(lib, cost_fn=lambda parts: 1.0, max_parts=1)

    def test_triples(self, actions):
        from repro.core.actions import generate_composites

        singles = ActionLibrary([actions.get(f"A{i}") for i in range(1, 6)])
        out = generate_composites(
            singles, cost_fn=lambda parts: 150.0, max_parts=3
        )
        a14 = actions.get("A14")
        matches = [
            a for a in out
            if a.removes == a14.removes and a.adds == a14.adds
        ]
        assert matches and matches[0].cost == 150.0


class TestBindings:
    def test_lookup_unbound_is_empty(self):
        bindings = ActionBindings()
        binding = bindings.lookup("A1", "server")
        assert isinstance(binding, LocalActionBinding)
        assert binding.in_action is None

    def test_bind_and_lookup(self):
        bindings = ActionBindings()
        calls = []
        bindings.bind("A1", "server", in_action=lambda: calls.append("in"))
        bindings.lookup("A1", "server").in_action()
        assert calls == ["in"]
        assert len(bindings) == 1
