"""Development-time static analyzer for adaptation specs (``repro lint``).

The analyzer takes a manifest (or an in-memory :class:`~repro.manifest.
SystemManifest`) and emits structured :class:`~repro.lint.diagnostics.
Diagnostic` findings with stable ``SAxxx`` codes, source spans, and
related locations — renderable as compiler-style text, JSON, or SARIF.

Public API:

* :func:`lint_text` / :func:`lint_path` — analyze manifest source; the
  tolerant scanner keeps going past defects, so one run reports them all.
* :func:`lint_system` — analyze an in-memory ``P`` (semantic stages only;
  well-formedness is enforced by the constructors).
* :func:`lint_source` — analyze an already-scanned
  :class:`~repro.manifest.ManifestSource`.
* :func:`fix_text` / :func:`apply_fixes` — apply the machine-applicable
  :class:`~repro.lint.fixes.Fix` edits attached to diagnostics
  (``repro lint --fix``); :func:`unified_diff` renders the change.

See ``DESIGN.md`` §10 for the full code table and pipeline description.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.lint.checks import (
    MAX_ENUM_COMPONENTS,
    MAX_SAT_ATOMS,
    action_arcs,
    analyze_source,
    analyze_system,
    jointly_satisfiable,
    truth_profile,
)
from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    Related,
    Severity,
    describe_code,
)
from repro.lint.fixes import (
    Edit,
    Fix,
    apply_edits,
    apply_fixes,
    fix_text,
    unified_diff,
)
from repro.lint.interference import MAX_PAIR_SOURCES, check_interference
from repro.lint.render import render_json, render_sarif, render_text
from repro.manifest import ManifestSource, SystemManifest, scan


def lint_source(
    source: ManifestSource,
    max_enum_components: "int | None" = None,
    workers: "int | None" = None,
) -> LintReport:
    """Run the analyzer over an already-scanned manifest.

    *max_enum_components* overrides the SA3xx safe-space enumeration cap
    for this run (above it SA301/SA302/SA305 skip with an SA307 note
    while SA205/SA306 fall back to lazy frontier search); *workers*
    enumerates the safe space on a process pool.
    """
    return analyze_source(
        source, max_enum_components=max_enum_components, workers=workers
    )


def lint_text(
    text: str,
    path: "str | None" = None,
    max_enum_components: "int | None" = None,
    workers: "int | None" = None,
) -> LintReport:
    """Analyze manifest source text (tolerant: reports every defect)."""
    return analyze_source(
        scan(text, path=path, strict=False),
        max_enum_components=max_enum_components,
        workers=workers,
    )


def lint_path(
    path: Union[str, Path],
    max_enum_components: "int | None" = None,
    workers: "int | None" = None,
) -> LintReport:
    """Analyze a manifest file on disk."""
    return lint_text(
        Path(path).read_text(encoding="utf-8"),
        path=str(path),
        max_enum_components=max_enum_components,
        workers=workers,
    )


def lint_system(
    manifest: SystemManifest,
    max_enum_components: "int | None" = None,
    workers: "int | None" = None,
) -> LintReport:
    """Analyze an in-memory system model (semantic stages SA2xx–SA4xx)."""
    return analyze_system(
        manifest, max_enum_components=max_enum_components, workers=workers
    )


__all__ = [
    "CODES",
    "Diagnostic",
    "Edit",
    "Fix",
    "LintReport",
    "MAX_ENUM_COMPONENTS",
    "MAX_PAIR_SOURCES",
    "MAX_SAT_ATOMS",
    "Related",
    "Severity",
    "action_arcs",
    "analyze_source",
    "analyze_system",
    "apply_edits",
    "apply_fixes",
    "check_interference",
    "describe_code",
    "fix_text",
    "jointly_satisfiable",
    "lint_path",
    "lint_source",
    "lint_system",
    "lint_text",
    "render_json",
    "render_sarif",
    "render_text",
    "truth_profile",
    "unified_diff",
]
