"""Property-based protocol tests: safety under randomized schedules.

The paper's central claim — the adaptation process is safe, including in
the presence of failures (§3.3, §4.4) — is checked here over randomized
seeds, delays, loss rates, and fail-to-reset injections.  Whatever the
schedule does, every run must (a) pass the two-clause safety checker,
(b) terminate at a *safe* configuration, and (c) leave the live component
placement equal to the committed configuration unless the manager parked
awaiting the user mid-step.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.protocol.failures import FailurePolicy
from repro.safety import check_safe
from repro.sim import (
    AdaptationCluster,
    BernoulliLoss,
    QuiescentApp,
    StuckApp,
    UniformDelay,
)

UNIVERSE = video_universe()
INVARIANTS = video_invariants()

POLICY = FailurePolicy(
    reset_timeout=60.0,
    resume_timeout=40.0,
    rollback_timeout=40.0,
    retransmit_interval=15.0,
)

run_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_cluster(seed, loss, quiesce, stuck_process=None, stuck_attempts=None):
    apps = {}
    for process in UNIVERSE.processes():
        if process == stuck_process:
            apps[process] = StuckApp(stuck_attempts=stuck_attempts, quiesce_delay=quiesce)
        else:
            apps[process] = QuiescentApp(quiesce)
    cluster = AdaptationCluster(
        UNIVERSE,
        video_invariants(),
        video_actions(),
        paper_source(UNIVERSE),
        seed=seed,
        apps=apps,
        policy=POLICY,
        default_loss=BernoulliLoss(loss),
        default_delay=UniformDelay(0.5, 3.0),
    )
    outcome = cluster.adapt_to(paper_target(UNIVERSE))
    return cluster, outcome


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    loss=st.floats(min_value=0.0, max_value=0.35),
    quiesce=st.floats(min_value=0.1, max_value=8.0),
)
@run_settings
def test_randomized_runs_are_always_safe(seed, loss, quiesce):
    cluster, outcome = run_cluster(seed, loss, quiesce)
    report = check_safe(cluster.trace, INVARIANTS)
    assert report.ok, report.violations[:3]
    assert outcome.status in ("complete", "aborted", "await_user")
    assert cluster.planner.space.is_safe(cluster.manager.committed)


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    loss=st.floats(min_value=0.0, max_value=0.25),
)
@run_settings
def test_terminal_config_is_source_target_or_safe_intermediate(seed, loss):
    cluster, outcome = run_cluster(seed, loss, quiesce=2.0)
    final = cluster.manager.committed
    safe_set = set(cluster.planner.space.enumerate())
    assert final in safe_set
    if outcome.status == "complete":
        assert final == paper_target(UNIVERSE)
        assert cluster.live_configuration == final


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    stuck=st.sampled_from(["server", "handheld", "laptop"]),
    attempts=st.one_of(st.none(), st.integers(min_value=1, max_value=3)),
)
@run_settings
def test_fail_to_reset_never_breaks_safety(seed, stuck, attempts):
    cluster, outcome = run_cluster(
        seed, loss=0.05, quiesce=2.0, stuck_process=stuck, stuck_attempts=attempts
    )
    report = check_safe(cluster.trace, INVARIANTS)
    assert report.ok, report.violations[:3]
    assert cluster.planner.space.is_safe(cluster.manager.committed)
    # live placement matches the committed config except when we parked
    # mid-step awaiting the user (blocked processes may hold undone state)
    if outcome.status != "await_user":
        assert cluster.live_configuration == cluster.manager.committed


@given(
    seed=st.integers(min_value=0, max_value=100_000),
    loss=st.floats(min_value=0.0, max_value=0.3),
)
@run_settings
def test_safe_under_reordered_control_channels(seed, loss):
    """Non-FIFO coordination channels (beyond the paper's TCP assumption):
    duplicates and reordering must neither crash the machines nor break
    safety."""
    apps = {p: QuiescentApp(2.0) for p in UNIVERSE.processes()}
    cluster = AdaptationCluster(
        UNIVERSE,
        video_invariants(),
        video_actions(),
        paper_source(UNIVERSE),
        seed=seed,
        apps=apps,
        policy=POLICY,
        default_loss=BernoulliLoss(loss),
        default_delay=UniformDelay(0.2, 6.0),
    )
    # make every control channel non-FIFO
    participants = list(UNIVERSE.processes()) + ["manager"]
    for src in participants:
        for dst in participants:
            if src != dst:
                cluster.network.set_channel(
                    src, dst, delay=UniformDelay(0.2, 6.0),
                    loss=BernoulliLoss(loss), fifo=False,
                )
    outcome = cluster.adapt_to(paper_target(UNIVERSE))
    report = check_safe(cluster.trace, INVARIANTS)
    assert report.ok, report.violations[:3]
    assert cluster.planner.space.is_safe(cluster.manager.committed)
    if outcome.status != "await_user":
        assert cluster.live_configuration == cluster.manager.committed


def test_same_seed_same_trace():
    a, outcome_a = run_cluster(seed=1234, loss=0.2, quiesce=2.0)
    b, outcome_b = run_cluster(seed=1234, loss=0.2, quiesce=2.0)
    assert outcome_a.status == outcome_b.status
    assert outcome_a.finished_at == outcome_b.finished_at
    assert len(a.trace) == len(b.trace)
    assert [type(r).__name__ for r in a.trace] == [type(r).__name__ for r in b.trace]


def test_different_seeds_usually_differ():
    a, _ = run_cluster(seed=1, loss=0.2, quiesce=2.0)
    b, _ = run_cluster(seed=2, loss=0.2, quiesce=2.0)
    assert a.network.messages_dropped != b.network.messages_dropped or (
        len(a.trace) != len(b.trace)
    )
