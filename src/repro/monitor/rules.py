"""Decision rules: when a sensor reading warrants an adaptation.

A :class:`Threshold` is a hysteresis comparator (trip above/below one
level, re-arm past another, so oscillating readings do not thrash the
adaptation manager).  An :class:`AdaptationRule` binds a threshold on one
sensor to a target configuration, with a priority and a cooldown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.model import Configuration
from repro.monitor.sensors import Sensor


@dataclass
class Threshold:
    """Hysteresis comparator.

    ``direction="above"`` trips when the reading exceeds ``trip`` and
    re-arms once it falls below ``rearm`` (which defaults to ``trip``);
    ``direction="below"`` is the mirror image.
    """

    trip: float
    direction: str = "above"
    rearm: Optional[float] = None
    _armed: bool = field(default=True, repr=False)

    def __post_init__(self):
        if self.direction not in ("above", "below"):
            raise ValueError(f"direction must be 'above' or 'below', got {self.direction!r}")
        if self.rearm is None:
            self.rearm = self.trip

    def check(self, value: float) -> bool:
        """Evaluate one reading; returns True on a (newly armed) trip."""
        if self.direction == "above":
            tripped = value > self.trip
            rearmed = value <= (self.rearm if self.rearm is not None else self.trip)
        else:
            tripped = value < self.trip
            rearmed = value >= (self.rearm if self.rearm is not None else self.trip)
        if self._armed and tripped:
            self._armed = False
            return True
        if not self._armed and rearmed:
            self._armed = True
        return False

    def observe(self, value: float) -> None:
        """Passive reading: may re-arm, never trips (used during cooldown)."""
        if self.direction == "above":
            rearmed = value <= (self.rearm if self.rearm is not None else self.trip)
        else:
            rearmed = value >= (self.rearm if self.rearm is not None else self.trip)
        if not self._armed and rearmed:
            self._armed = True


@dataclass
class AdaptationRule:
    """Sensor threshold → target configuration.

    Attributes:
        name: rule identifier for logs and tests.
        sensor: the sensor to sample.
        threshold: trip condition with hysteresis.
        target: configuration to request when tripped.
        priority: higher wins when several rules trip in one evaluation.
        cooldown: minimum time between firings of this rule.
    """

    name: str
    sensor: Sensor
    threshold: Threshold
    target: Configuration
    priority: int = 0
    cooldown: float = 0.0
    last_fired: Optional[float] = field(default=None, repr=False)
    fired_count: int = field(default=0, repr=False)

    def ready(self, now: float) -> bool:
        return self.last_fired is None or (now - self.last_fired) >= self.cooldown

    def evaluate(self, now: float) -> bool:
        """Sample the sensor; True iff this rule wants to fire now."""
        if not self.ready(now):
            # Cooling down: keep hysteresis re-arming, but never consume a
            # trip the rule cannot act on.
            self.threshold.observe(self.sensor.sample())
            return False
        return self.threshold.check(self.sensor.sample())

    def mark_fired(self, now: float) -> None:
        self.last_fired = now
        self.fired_count += 1
