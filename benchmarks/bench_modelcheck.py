"""Experiment V1 — bounded model checking of the realization protocol.

The §3.3 equivalence claim, verified exhaustively rather than sampled:
every interleaving of message deliveries (with arbitrary reordering),
bounded drops, quiesce timings, and timeout races must keep both safety
clauses and terminate without deadlock.  Reported numbers are the state
counts — the size of the behavior space each guarantee covers.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video.scenario import make_video_flush_provider
from repro.apps.video.system import paper_source, paper_target, video_planner
from repro.bench import format_table
from repro.core.planner import AdaptationPlan, PlanStep
from repro.modelcheck import ProtocolModelChecker


def single_step(planner, action_id):
    source = paper_source()
    action = planner.actions.get(action_id)
    target = action.apply(source)
    return AdaptationPlan(
        source=source, target=target,
        steps=(PlanStep(index=0, action=action, source=source, target=target),),
        total_cost=action.cost,
    )


CASES = [
    ("A2 single step, lossless", "A2", 0),
    ("A2 single step, 1 drop", "A2", 1),
    ("A14 triple, lossless", "A14", 0),
]


@pytest.mark.parametrize("label,action_id,drops", CASES, ids=[c[0] for c in CASES])
def test_exhaustive(benchmark, label, action_id, drops):
    from repro.protocol.failures import FailurePolicy

    planner = video_planner()
    plan = single_step(planner, action_id)
    # drop scenarios: bound the retransmission branching so the space
    # stays in the tens of thousands (coverage documented in extra_info)
    policy = (
        FailurePolicy(step_retries=1, max_alternate_plans=1,
                      max_retransmits=0, max_post_resume_retransmits=1)
        if drops else None
    )
    checker = ProtocolModelChecker(
        planner, plan, max_drops=drops,
        flush_provider=make_video_flush_provider(planner.universe),
        max_states=400_000,
        policy=policy,
    )
    outcomes = benchmark.pedantic(checker.run, rounds=1, iterations=1)
    assert set(outcomes) <= {"complete", "aborted", "await_user"}
    assert outcomes.get("complete", 0) >= 1
    benchmark.extra_info["states"] = checker.states_explored
    benchmark.extra_info["outcomes"] = outcomes


def test_full_map_exhaustive(benchmark):
    """All interleavings of the entire five-step MAP (lossless)."""
    planner = video_planner()
    plan = planner.plan(paper_source(), paper_target())
    checker = ProtocolModelChecker(
        planner, plan,
        flush_provider=make_video_flush_provider(planner.universe),
        max_states=400_000,
    )
    outcomes = benchmark.pedantic(checker.run, rounds=1, iterations=1)
    assert outcomes == {"complete": 1}
    report(
        "bounded model checking (coverage)",
        format_table(
            ["scenario", "states explored", "terminal outcomes"],
            [("full MAP, all interleavings", checker.states_explored,
              str(outcomes))],
        ),
    )
    benchmark.extra_info["states"] = checker.states_explored
