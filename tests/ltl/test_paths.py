"""Path-quantified verification over the SAG (``repro.ltl.paths``).

Eager semantics run on the paper's §5 video system (fixtures from
``tests/conftest.py``); the lazy frontier mode is pinned against the
eager mode — exact k-best parity on the video system, verdict parity on
random universes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner
from repro.ltl import DEFAULT_K, parse_property, verify_paths

HOLDS = parse_property("historically({one_of(E1, E2)})")
NO_E2 = parse_property("historically(!E2)")


class TestAllQuantifier:
    def test_invariant_clause_holds_on_every_path(self, planner, source, target):
        verdict = verify_paths(planner, source, target, HOLDS)
        assert verdict.holds is True
        assert verdict.mode == "eager"
        assert verdict.complete
        assert verdict.k == DEFAULT_K
        assert verdict.paths_checked == len(planner.plan_k(source, target, DEFAULT_K))
        assert verdict.counterexample is None

    def test_violation_early_exits_on_the_first_bad_path(
        self, planner, source, target
    ):
        # the target itself carries E2, so path 1 already refutes ∀
        verdict = verify_paths(planner, source, target, NO_E2)
        assert verdict.holds is False
        assert verdict.paths_checked == 1
        assert "path 1" in verdict.reason

    def test_counterexample_is_minimized_to_first_violating_prefix(
        self, planner, source, target
    ):
        verdict = verify_paths(planner, source, target, NO_E2)
        plan = verdict.counterexample
        assert plan is not None
        assert len(plan.steps) == verdict.violation_index
        # the prefix ends exactly at the first violating configuration
        assert "E2" in plan.configurations[-1].members
        for config in plan.configurations[:-1]:
            assert "E2" not in config.members
        assert plan.total_cost == sum(step.action.cost for step in plan.steps)

    def test_property_violated_at_source_minimizes_to_zero_steps(
        self, planner, source, target
    ):
        verdict = verify_paths(planner, source, target, parse_property("!E1"))
        assert verdict.holds is False
        assert verdict.violation_index == 0
        assert verdict.counterexample.steps == ()
        assert verdict.counterexample.total_cost == 0


class TestExistsQuantifier:
    def test_witness_short_circuits(self, planner, source, target):
        verdict = verify_paths(planner, source, target, HOLDS, "exists")
        assert verdict.holds is True
        assert verdict.paths_checked == 1
        assert verdict.witness is not None
        assert verdict.counterexample is None

    def test_no_witness_checks_the_whole_set(self, planner, source, target):
        verdict = verify_paths(planner, source, target, NO_E2, "exists")
        assert verdict.holds is False
        assert verdict.witness is None
        assert verdict.paths_checked == len(planner.plan_k(source, target, DEFAULT_K))


class TestNoPath:
    def test_all_holds_vacuously(self, planner, source, target):
        # the video SAG is one-way: nothing routes back to the source
        verdict = verify_paths(planner, target, source, HOLDS)
        assert verdict.holds is True
        assert verdict.paths_checked == 0
        assert "vacuously" in verdict.reason

    def test_exists_is_false(self, planner, source, target):
        verdict = verify_paths(planner, target, source, HOLDS, "exists")
        assert verdict.holds is False
        assert verdict.paths_checked == 0


class TestValidation:
    def test_bad_quantifier(self, planner, source, target):
        with pytest.raises(ValueError):
            verify_paths(planner, source, target, HOLDS, "some")

    def test_non_positive_k(self, planner, source, target):
        with pytest.raises(ValueError):
            verify_paths(planner, source, target, HOLDS, k=0)


class TestLazyMode:
    def test_lazy_plan_k_matches_eager_yen_exactly(self, planner, source, target):
        eager = planner.plan_k(source, target, DEFAULT_K)
        lazy_planner = AdaptationPlanner(
            planner.universe, planner.invariants, planner.actions
        )
        lazy, complete = lazy_planner.lazy_plan_k(source, target, DEFAULT_K)
        assert complete
        assert [p.total_cost for p in lazy] == [p.total_cost for p in eager]
        assert [
            [s.action.action_id for s in p.steps] for p in lazy
        ] == [[s.action.action_id for s in p.steps] for p in eager]
        assert lazy_planner._sag is None  # never built the eager graph

    @pytest.mark.parametrize("phi", [HOLDS, NO_E2])
    @pytest.mark.parametrize("quantifier", ["all", "exists"])
    def test_verdict_parity_on_video(self, planner, source, target, phi, quantifier):
        eager = verify_paths(planner, source, target, phi, quantifier, lazy=False)
        lazy = verify_paths(planner, source, target, phi, quantifier, lazy=True)
        assert lazy.holds == eager.holds
        assert lazy.paths_checked == eager.paths_checked
        assert lazy.mode == "lazy" and eager.mode == "eager"
        if eager.counterexample is not None:
            assert lazy.counterexample.total_cost == eager.counterexample.total_cost

    def test_exhausted_budget_is_inconclusive(self, planner, source, target):
        verdict = verify_paths(
            planner, source, target, HOLDS, lazy=True, max_expansions=1
        )
        assert verdict.holds is None
        assert not verdict.complete
        assert "inconclusive" in verdict.reason


def toggle_library(names):
    actions = []
    for index, name in enumerate(names):
        cost = 1.0 + index  # distinct costs keep tie-breaks interesting
        actions.append(
            AdaptiveAction(f"add-{name}", frozenset(), frozenset({name}), cost)
        )
        actions.append(
            AdaptiveAction(f"del-{name}", frozenset({name}), frozenset(), cost)
        )
    return ActionLibrary(actions)


PROPERTIES = tuple(
    parse_property(text)
    for text in (
        "historically(!C0)",
        "once(C1)",
        "historically({one_of(C0, C1)})",
        "C2 -> once(C0)",
        "historically(since(!C0, C1) -> !C2)",
    )
)


@given(
    size=st.integers(min_value=3, max_value=6),
    source_bits=st.integers(min_value=0),
    target_bits=st.integers(min_value=0),
    phi=st.sampled_from(PROPERTIES),
    quantifier=st.sampled_from(["all", "exists"]),
    k=st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_lazy_and_eager_verdicts_agree(
    size, source_bits, target_bits, phi, quantifier, k
):
    """On unconstrained universes the frontier Yen must equal CSR Yen."""
    names = [f"C{i}" for i in range(size)]
    universe = ComponentUniverse.from_names(names)
    library = toggle_library(names)
    invariants = InvariantSet([])
    source = Configuration(
        [name for i, name in enumerate(names) if (source_bits >> i) & 1]
    )
    target = Configuration(
        [name for i, name in enumerate(names) if (target_bits >> i) & 1]
    )
    eager = verify_paths(
        AdaptationPlanner(universe, invariants, library),
        source, target, phi, quantifier, k, lazy=False,
    )
    lazy = verify_paths(
        AdaptationPlanner(universe, invariants, library),
        source, target, phi, quantifier, k, lazy=True,
    )
    assert lazy.holds == eager.holds
    assert lazy.paths_checked == eager.paths_checked
    assert lazy.complete
    if eager.counterexample is None:
        assert lazy.counterexample is None
    else:
        assert lazy.counterexample.total_cost == eager.counterexample.total_cost
        assert lazy.violation_index == eager.violation_index
    if eager.witness is not None:
        assert lazy.witness.total_cost == eager.witness.total_cost
