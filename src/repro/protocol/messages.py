"""Wire messages between the adaptation manager and agents (Figs. 1–2).

Message names follow the paper's Courier-font vocabulary: ``reset``,
``reset done``, ``adapt done``, ``resume``, ``resume done``, ``rollback``.
Every step-scoped message carries a ``step_key`` of the form
``"<plan_id>/<step_index>#<attempt>"`` so retransmissions and retries are
unambiguous — agents treat a new attempt as a fresh step and answer
duplicates of the current attempt idempotently by re-sending their last
status message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.core.actions import AdaptiveAction


@dataclass(frozen=True)
class Message:
    """Base class for protocol messages."""

    step_key: str


@dataclass(frozen=True)
class ResetCmd(Message):
    """Manager → agent: begin the reset for one adaptation step.

    Attributes:
        action: the adaptive action of this step (agents only execute the
            local slice touching their own components).
        participants: all processes taking part — lets an agent know
            whether it is the sole participant (solo agents may resume
            directly after their in-action, Fig. 1).
        await_flush: this agent's local safe state additionally requires
            the in-band drain marker (global safe condition, §3.2).
        inject_flush: this agent must inject the drain marker into its
            outgoing stream when it blocks.
    """

    action: AdaptiveAction
    participants: FrozenSet[str]
    await_flush: bool = False
    inject_flush: bool = False


@dataclass(frozen=True)
class ResetDone(Message):
    """Agent → manager: local safe state reached, process held (blocked)."""

    process: str


@dataclass(frozen=True)
class AdaptDone(Message):
    """Agent → manager: local in-action completed."""

    process: str


@dataclass(frozen=True)
class ResumeCmd(Message):
    """Manager → agent: all in-actions done; resume full operation."""


@dataclass(frozen=True)
class ResumeDone(Message):
    """Agent → manager: full operation resumed."""

    process: str


@dataclass(frozen=True)
class RollbackCmd(Message):
    """Manager → agent: abort this step and restore the prior state."""


@dataclass(frozen=True)
class RollbackDone(Message):
    """Agent → manager: rollback finished, process running on old config."""

    process: str


@dataclass(frozen=True)
class FlushRequest(Message):
    """Manager → non-participant upstream process: inject a drain marker.

    Used when an adaptation step reduces decode capability downstream but
    does not change the upstream process itself: the upstream injects an
    in-band FLUSH marker (without blocking) so the downstream agent can
    detect when every packet sent before the step has arrived — the
    global safe condition of §3.2 — before executing its in-action.
    """


@dataclass(frozen=True)
class StatusQuery(Message):
    """Manager → agent: liveness / progress probe (used by diagnostics)."""


@dataclass(frozen=True)
class StatusReport(Message):
    """Agent → manager: current state name and bookkeeping counters."""

    process: str
    state: str
    detail: str = ""


@dataclass(frozen=True)
class Envelope:
    """A routed message: source, destination, payload.

    Transport layers (simulated or threaded) move envelopes; the machines
    themselves never see addressing beyond this.
    """

    source: str
    destination: str
    message: Message


def step_key(plan_id: str, step_index: int, attempt: int) -> str:
    """Canonical step-key format shared by manager and tests."""
    return f"{plan_id}/{step_index}#{attempt}"
