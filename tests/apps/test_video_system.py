"""Unit tests for the §5.1 static model (universe, invariants, Table 2)."""

import pytest

from repro.apps.video.scenario import (
    VIDEO_CCS,
    cid_for,
    make_video_flush_provider,
)
from repro.apps.video.system import (
    PAPER_SOURCE_BITS,
    PAPER_TARGET_BITS,
    paper_source,
    paper_target,
    video_actions,
    video_planner,
    video_universe,
)


class TestModel:
    def test_component_order_matches_paper(self, universe):
        assert universe.order == ("D5", "D4", "D3", "D2", "D1", "E2", "E1")

    def test_source_target_bits(self):
        assert PAPER_SOURCE_BITS == "0100101"
        assert PAPER_TARGET_BITS == "1010010"
        assert paper_source() == frozenset({"D4", "D1", "E1"})
        assert paper_target() == frozenset({"D5", "D3", "E2"})

    def test_table2_has_17_actions(self, actions):
        assert len(actions) == 17
        assert actions.ids() == tuple(f"A{i}" for i in range(1, 18))

    def test_table2_costs(self, actions):
        costs = {a.action_id: a.cost for a in actions}
        for aid in ("A1", "A2", "A3", "A4", "A5", "A16", "A17"):
            assert costs[aid] == 10
        for aid in ("A6", "A7", "A8", "A9"):
            assert costs[aid] == 100
        for aid in ("A10", "A11", "A12"):
            assert costs[aid] == 50
        for aid in ("A13", "A14", "A15"):
            assert costs[aid] == 150

    def test_table2_operations(self, actions):
        assert actions.get("A1").operation_text() == "E1 -> E2"
        assert actions.get("A16").operation_text() == "-D4"
        assert actions.get("A17").operation_text() == "+D5"
        assert actions.get("A14").operation_text() == "(D1, D4, E1) -> (D3, D5, E2)"

    def test_composites_match_their_descriptions(self, actions):
        # e.g. A6 = "A1 and A2": its delta is the union of A1 and A2.
        pairs = {
            "A6": ("A1", "A2"), "A7": ("A1", "A3"), "A8": ("A1", "A4"),
            "A9": ("A1", "A5"), "A10": ("A2", "A5"), "A11": ("A3", "A5"),
            "A12": ("A4", "A5"),
        }
        for composite_id, (left_id, right_id) in pairs.items():
            composite = actions.get(composite_id)
            left, right = actions.get(left_id), actions.get(right_id)
            assert composite.removes == left.removes | right.removes
            assert composite.adds == left.adds | right.adds

    def test_planner_factory(self):
        planner = video_planner()
        assert planner.space.count() == 8


class TestFlushProvider:
    @pytest.fixture
    def provider(self, universe):
        return make_video_flush_provider(universe)

    def participants(self, actions, universe, action_id):
        return actions.get(action_id).participants(universe)

    def test_capability_preserving_swap_needs_no_drain(self, provider, actions, universe):
        # A2: D1→D2 — D2 decodes everything D1 did.
        action = actions.get("A2")
        inject, awaiters = provider(action, self.participants(actions, universe, "A2"))
        assert inject == frozenset() and awaiters == frozenset()

    def test_capability_reducing_swap_drains_without_blocking_server(
        self, provider, actions, universe
    ):
        # A4: D2→D3 loses des64 on the handheld.
        action = actions.get("A4")
        inject, awaiters = provider(action, self.participants(actions, universe, "A4"))
        assert inject == frozenset({"server"})
        assert awaiters == frozenset({"handheld"})

    def test_remove_decoder_drains(self, provider, actions, universe):
        action = actions.get("A16")  # -D4: laptop loses des64
        inject, awaiters = provider(action, self.participants(actions, universe, "A16"))
        assert awaiters == frozenset({"laptop"})

    def test_insert_decoder_needs_no_drain(self, provider, actions, universe):
        action = actions.get("A17")  # +D5 adds capability
        inject, awaiters = provider(action, self.participants(actions, universe, "A17"))
        assert inject == frozenset() and awaiters == frozenset()

    def test_encoder_only_swap_needs_no_drain(self, provider, actions, universe):
        # A1: old decoders remain present in both endpoint configs.
        action = actions.get("A1")
        inject, awaiters = provider(action, self.participants(actions, universe, "A1"))
        assert inject == frozenset() and awaiters == frozenset()

    def test_composite_blocks_server_and_drains_decoder_hosts(
        self, provider, actions, universe
    ):
        action = actions.get("A14")  # triple across all three processes
        inject, awaiters = provider(action, self.participants(actions, universe, "A14"))
        assert inject == frozenset({"server"})
        assert awaiters == frozenset({"handheld", "laptop"})


class TestCCS:
    def test_allowed_sequence(self):
        assert VIDEO_CCS.is_complete(("encode", "send", "receive", "decode"))
        assert not VIDEO_CCS.is_complete(("encode", "send", "receive", "corrupt"))

    def test_cid_scheme_distinct_per_destination(self):
        assert cid_for(10, 0) != cid_for(10, 1)
        assert cid_for(10, 0) != cid_for(11, 0)
