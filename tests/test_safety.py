"""Unit tests for the executable two-clause safety checker (§3)."""

import pytest

from repro.ccs import CCSSpec
from repro.core.invariants import InvariantSet
from repro.errors import SafetyViolationError
from repro.safety import SafetyChecker, check_safe
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    Trace,
)

INVARIANTS = InvariantSet.of("one_of(E1, E2)", "E1 -> D1")
SPEC = CCSSpec.single("send", "receive", name="pair")


def safe_trace():
    trace = Trace()
    trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1", "D1"})))
    trace.append(CommRecord(time=1.0, cid=1, action="send"))
    trace.append(CommRecord(time=2.0, cid=1, action="receive"))
    trace.append(BlockRecord(time=3.0, process="p", blocked=True))
    trace.append(
        AdaptationApplied(time=4.0, process="p", action_id="A1",
                          removes=frozenset({"E1"}), adds=frozenset({"E2"}))
    )
    trace.append(BlockRecord(time=5.0, process="p", blocked=False))
    trace.append(
        ConfigCommitted(time=6.0, configuration=frozenset({"E2", "D1"}), step_id="s1")
    )
    return trace


class TestSafeTrace:
    def test_reports_ok(self):
        report = check_safe(safe_trace(), INVARIANTS, ccs=SPEC)
        assert report.ok
        assert report.configurations_checked == 2
        assert report.segments_checked == 1
        assert report.segments_complete == 1
        assert report.in_actions_checked == 1

    def test_raise_if_unsafe_noop(self):
        check_safe(safe_trace(), INVARIANTS, ccs=SPEC).raise_if_unsafe()

    def test_summary_format(self):
        assert "SAFE" in check_safe(safe_trace(), INVARIANTS).summary()


class TestDependencyClause:
    def test_unsafe_committed_config_flagged(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1"})))
        report = check_safe(trace, INVARIANTS)
        assert not report.ok
        violations = report.by_kind("dependency")
        assert len(violations) == 1
        assert "E1 -> D1" in violations[0].detail

    def test_one_violation_per_broken_invariant(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1", "E2"})))
        report = check_safe(trace, INVARIANTS)
        assert len(report.by_kind("dependency")) == 2


class TestCCSClause:
    def test_in_progress_at_end_permitted(self):
        trace = safe_trace()
        trace.append(CommRecord(time=7.0, cid=2, action="send"))
        assert check_safe(trace, INVARIANTS, ccs=SPEC).ok

    def test_interrupted_segment_flagged(self):
        trace = safe_trace()
        trace.append(CommRecord(time=7.0, cid=2, action="receive"))  # bad start
        report = check_safe(trace, INVARIANTS, ccs=SPEC)
        assert len(report.by_kind("ccs")) == 1
        assert "CID=2" in report.by_kind("ccs")[0].detail

    def test_no_ccs_spec_skips_clause(self):
        trace = safe_trace()
        trace.append(CommRecord(time=7.0, cid=2, action="receive"))
        assert check_safe(trace, INVARIANTS).ok  # ccs=None

    def test_corruption_record_flagged(self):
        trace = safe_trace()
        trace.append(CorruptionRecord(time=8.0, process="p", detail="undecodable"))
        report = check_safe(trace, INVARIANTS, ccs=SPEC)
        assert len(report.by_kind("corruption")) == 1


class TestDisciplineClause:
    def test_in_action_while_unblocked_flagged(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1", "D1"})))
        trace.append(
            AdaptationApplied(time=1.0, process="p", action_id="A1",
                              removes=frozenset(), adds=frozenset({"X"}))
        )
        report = check_safe(trace, INVARIANTS)
        assert len(report.by_kind("discipline")) == 1

    def test_discipline_check_optional(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1", "D1"})))
        trace.append(
            AdaptationApplied(time=1.0, process="p", action_id="A1",
                              removes=frozenset(), adds=frozenset({"X"}))
        )
        assert check_safe(trace, INVARIANTS, check_discipline=False).ok

    def test_block_state_tracked_per_process(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1", "D1"})))
        trace.append(BlockRecord(time=1.0, process="q", blocked=True))
        trace.append(
            AdaptationApplied(time=2.0, process="p", action_id="A1",
                              removes=frozenset(), adds=frozenset({"X"}))
        )
        report = check_safe(trace, INVARIANTS)
        assert len(report.by_kind("discipline")) == 1  # p unblocked, q irrelevant


class TestRaising:
    def test_raise_if_unsafe(self):
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1"})))
        report = check_safe(trace, INVARIANTS)
        with pytest.raises(SafetyViolationError) as excinfo:
            report.raise_if_unsafe()
        assert "dependency" in str(excinfo.value)

    def test_violations_ordered_by_kind_groups(self):
        checker = SafetyChecker(INVARIANTS, ccs=SPEC)
        trace = Trace()
        trace.append(ConfigCommitted(time=0.0, configuration=frozenset({"E1"})))
        trace.append(CommRecord(time=1.0, cid=9, action="receive"))
        report = checker.check(trace)
        kinds = {v.kind for v in report.violations}
        assert kinds == {"dependency", "ccs"}
