"""Agent state machine — Figure 1 of the paper, sans-io.

One agent is attached to every process that hosts adaptable components.
It receives commands from the adaptation manager, drives the local
process through::

    running → resetting → safe(blocked) → adapted(blocked) → resuming → running

and reports ``reset done`` / ``adapt done`` / ``resume done``.  The dashed
failure-handling transitions (receive ``rollback``) restore the prior
state from any non-running phase.

The machine is pure: every input returns a list of
:mod:`~repro.protocol.effects`.  Host integration contract:

* ``StartReset`` → host begins pre-action + drain, later calls
  :meth:`AgentMachine.on_local_safe`;
* ``ExecuteInAction`` → host recomposes, calls
  :meth:`AgentMachine.on_in_action_applied`;
* ``UndoInAction`` → host reverses, calls :meth:`AgentMachine.on_undone`;
* ``ResumeProcess`` → host unblocks, calls :meth:`AgentMachine.on_resumed`.

Duplicate commands (manager retransmissions) are answered idempotently by
re-sending the agent's latest status message for that step attempt; a
rollback for an already locally-completed step (possible for a solo agent
that auto-resumed while its ``adapt done`` was lost) re-blocks, undoes the
applied action, and acknowledges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.actions import AdaptiveAction
from repro.errors import IllegalTransitionError
from repro.protocol.effects import (
    AbortReset,
    BlockProcess,
    Effect,
    ExecuteInAction,
    ExecutePostAction,
    ResumeProcess,
    Send,
    StartReset,
    UndoInAction,
)
from repro.protocol.messages import (
    AdaptDone,
    Message,
    ResetCmd,
    ResetDone,
    ResumeCmd,
    ResumeDone,
    RollbackCmd,
    RollbackDone,
    StatusQuery,
    StatusReport,
)


class AgentState(enum.Enum):
    """Figure 1's states (RESUMING is transient while the host unblocks)."""

    RUNNING = "running"
    RESETTING = "resetting"
    SAFE = "safe"
    ADAPTED = "adapted"
    RESUMING = "resuming"
    ROLLING_BACK = "rolling_back"


@dataclass(frozen=True)
class _CompletedStep:
    """Outcome of a locally finished step, kept for idempotent replays."""

    final_message: Message
    applied_action: Optional[AdaptiveAction]  # None if the step was rolled back


class AgentMachine:
    """Sans-io agent for one process."""

    def __init__(self, process_id: str, manager_id: str = "manager"):
        self.process_id = process_id
        self.manager_id = manager_id
        self.state = AgentState.RUNNING
        self.step_key: Optional[str] = None
        self.action: Optional[AdaptiveAction] = None
        self.solo = False
        self.in_action_applied = False
        self._completed: Dict[str, _CompletedStep] = {}

    # ------------------------------------------------------------------ helpers
    def _send(self, message: Message) -> Send:
        return Send(self.manager_id, message)

    def _finish(self, final_message: Message) -> List[Effect]:
        """Record the step outcome for idempotent replays and go RUNNING."""
        assert self.step_key is not None
        applied = self.action if self.in_action_applied else None
        self._completed[self.step_key] = _CompletedStep(final_message, applied)
        self.state = AgentState.RUNNING
        self.step_key = None
        self.action = None
        self.solo = False
        self.in_action_applied = False
        return [self._send(final_message)]

    # ------------------------------------------------------------------ messages
    def on_message(self, message: Message) -> List[Effect]:
        """Dispatch a message from the manager."""
        if isinstance(message, ResetCmd):
            return self._on_reset(message)
        if isinstance(message, ResumeCmd):
            return self._on_resume_cmd(message)
        if isinstance(message, RollbackCmd):
            return self._on_rollback_cmd(message)
        if isinstance(message, StatusQuery):
            return [
                self._send(
                    StatusReport(
                        step_key=message.step_key,
                        process=self.process_id,
                        state=self.state.value,
                    )
                )
            ]
        raise IllegalTransitionError(
            f"agent {self.process_id}: unexpected message {type(message).__name__}"
        )

    def _on_reset(self, message: ResetCmd) -> List[Effect]:
        if message.step_key in self._completed:
            # Whole step already finished locally; replay the final answer.
            return [self._send(self._completed[message.step_key].final_message)]
        if message.step_key == self.step_key:
            # Retransmission of the current attempt: re-send progress.
            if self.state == AgentState.SAFE:
                return [self._send(ResetDone(self.step_key, self.process_id))]
            if self.state == AgentState.ADAPTED:
                return [self._send(AdaptDone(self.step_key, self.process_id))]
            return []  # still resetting / resuming; nothing new to report
        if self.state != AgentState.RUNNING:
            # A new attempt while mid-step should not happen (the manager
            # always rolls back first); refuse loudly instead of corrupting.
            raise IllegalTransitionError(
                f"agent {self.process_id}: reset {message.step_key!r} received "
                f"in state {self.state.value} (current step {self.step_key!r})"
            )
        self.state = AgentState.RESETTING
        self.step_key = message.step_key
        self.action = message.action
        self.solo = message.participants == frozenset((self.process_id,))
        self.in_action_applied = False
        return [
            StartReset(
                step_key=message.step_key,
                action=message.action,
                inject_flush=message.inject_flush,
                await_flush=message.await_flush,
            )
        ]

    def _on_resume_cmd(self, message: ResumeCmd) -> List[Effect]:
        if message.step_key in self._completed:
            return [self._send(self._completed[message.step_key].final_message)]
        if message.step_key != self.step_key:
            return []  # stale resume for an attempt we never started
        if self.state == AgentState.ADAPTED:
            self.state = AgentState.RESUMING
            return [ResumeProcess(step_key=message.step_key)]
        return []  # duplicate while already resuming

    def _on_rollback_cmd(self, message: RollbackCmd) -> List[Effect]:
        done = self._completed.get(message.step_key)
        if done is not None:
            if isinstance(done.final_message, RollbackDone) or done.applied_action is None:
                # Already rolled back (or nothing was ever applied): replay.
                return [self._send(RollbackDone(message.step_key, self.process_id))]
            # Step committed locally (solo auto-resume) but the manager is
            # aborting: re-block, undo the applied action, acknowledge.
            del self._completed[message.step_key]
            self.step_key = message.step_key
            self.action = done.applied_action
            self.state = AgentState.ROLLING_BACK
            self.in_action_applied = True
            return [
                BlockProcess(step_key=message.step_key),
                UndoInAction(step_key=message.step_key, action=self.action),
            ]
        if message.step_key != self.step_key:
            # Rollback for an attempt this agent never saw (its reset was
            # lost in the network).  Nothing to undo: acknowledge, and
            # record the attempt as rolled back so a *delayed* reset for it
            # arriving later (non-FIFO channels) replays the answer instead
            # of being mistaken for a fresh step.
            done = RollbackDone(message.step_key, self.process_id)
            self._completed[message.step_key] = _CompletedStep(done, None)
            return [self._send(done)]
        if self.state == AgentState.RESETTING:
            self.state = AgentState.ROLLING_BACK
            effects: List[Effect] = [AbortReset(step_key=message.step_key)]
            effects.extend(self._finish(RollbackDone(message.step_key, self.process_id)))
            return effects
        if self.state in (AgentState.SAFE, AgentState.ADAPTED):
            self.state = AgentState.ROLLING_BACK
            if not self.in_action_applied:
                # Blocked but structure unchanged: just resume the old config.
                return [ResumeProcess(step_key=message.step_key)]
            assert self.action is not None
            return [UndoInAction(step_key=message.step_key, action=self.action)]
        return []  # duplicate rollback while ROLLING_BACK/RESUMING

    # ------------------------------------------------------------------ host callbacks
    def on_local_safe(self, step_key: str) -> List[Effect]:
        """Host reached the local safe state (+ global condition, §3.2)."""
        if step_key != self.step_key or self.state != AgentState.RESETTING:
            return []  # stale notification (e.g. after a rollback)
        self.state = AgentState.SAFE
        assert self.action is not None
        return [
            BlockProcess(step_key=step_key),
            self._send(ResetDone(step_key, self.process_id)),
            ExecuteInAction(step_key=step_key, action=self.action),
        ]

    def on_in_action_applied(self, step_key: str) -> List[Effect]:
        """Host finished the structural change of the in-action."""
        if step_key != self.step_key or self.state != AgentState.SAFE:
            return []
        self.in_action_applied = True
        self.state = AgentState.ADAPTED
        effects: List[Effect] = [self._send(AdaptDone(step_key, self.process_id))]
        if self.solo:
            # Fig. 1: the sole participant skips the blocked wait and
            # proceeds directly to resuming.
            self.state = AgentState.RESUMING
            effects.append(ResumeProcess(step_key=step_key))
        return effects

    def on_resumed(self, step_key: str) -> List[Effect]:
        """Host confirmed full operation is restored."""
        if step_key != self.step_key:
            return []
        if self.state == AgentState.RESUMING:
            assert self.action is not None
            post = ExecutePostAction(step_key=step_key, action=self.action)
            return self._finish(ResumeDone(step_key, self.process_id)) + [post]
        if self.state == AgentState.ROLLING_BACK and not self.in_action_applied:
            return self._finish(RollbackDone(step_key, self.process_id))
        return []

    def on_undone(self, step_key: str) -> List[Effect]:
        """Host confirmed the inverse in-action was applied (rollback)."""
        if step_key != self.step_key or self.state != AgentState.ROLLING_BACK:
            return []
        self.in_action_applied = False
        return [ResumeProcess(step_key=step_key)]
