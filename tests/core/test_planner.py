"""Unit tests for the Minimum Adaptation Path planner (§4.2, Fig. 4)."""

import pytest

from repro.core.model import Configuration
from repro.core.planner import AdaptationPlan, AdaptationPlanner, PlanStep
from repro.errors import NoSafePathError, UnsafeConfigurationError


class TestPaperMAP:
    def test_minimum_cost_is_50ms(self, planner, source, target):
        plan = planner.plan(source, target)
        assert plan.total_cost == 50.0
        assert len(plan) == 5

    def test_map_uses_only_cheap_single_actions(self, planner, source, target):
        plan = planner.plan(source, target)
        assert set(plan.action_ids) == {"A1", "A2", "A4", "A16", "A17"}
        for step in plan.steps:
            assert step.action.cost == 10.0

    def test_paper_path_is_among_optimal(self, planner, source, target):
        # The paper reports A2,A17,A1,A16,A4 — one of several cost-50 paths.
        plans = planner.plan_k(source, target, 8)
        optimal = [p.action_ids for p in plans if p.total_cost == 50.0]
        assert ("A2", "A17", "A1", "A16", "A4") in optimal

    def test_steps_chain_configurations(self, planner, source, target):
        plan = planner.plan(source, target)
        assert plan.steps[0].source == source
        assert plan.steps[-1].target == target
        for earlier, later in zip(plan.steps, plan.steps[1:]):
            assert earlier.target == later.source

    def test_every_intermediate_configuration_safe(self, planner, source, target):
        plan = planner.plan(source, target)
        for config in plan.configurations:
            assert planner.space.is_safe(config)

    def test_deterministic(self, planner, source, target):
        first = planner.plan(source, target)
        second = planner.plan(source, target)
        assert first.action_ids == second.action_ids


class TestEndpointValidation:
    def test_unsafe_source_rejected(self, planner, target):
        with pytest.raises(UnsafeConfigurationError):
            planner.plan(Configuration(["E1"]), target)

    def test_unsafe_target_rejected(self, planner, source):
        with pytest.raises(UnsafeConfigurationError):
            planner.plan(source, Configuration(["D1", "D2", "D4", "E1"]))

    def test_unknown_component_rejected(self, planner, source):
        from repro.errors import UnknownComponentError

        with pytest.raises(UnknownComponentError):
            planner.plan(source, Configuration(["Z1"]))

    def test_trivial_plan_when_source_is_target(self, planner, source):
        plan = planner.plan(source, source)
        assert plan.steps == ()
        assert plan.total_cost == 0.0
        assert plan.configurations == (source,)

    def test_no_path_raises(self, planner, universe, target):
        # {D2,D5,E2} can reach the target, but the reverse direction from
        # the target back to the source is impossible (no -D5 action, and
        # E1 requires D4 which would need +D4 — also absent).
        source = universe.from_bits("0100101")
        with pytest.raises(NoSafePathError):
            planner.plan(target, source)


class TestPlanK:
    def test_costs_non_decreasing(self, planner, source, target):
        plans = planner.plan_k(source, target, 6)
        costs = [p.total_cost for p in plans]
        assert costs == sorted(costs)
        assert costs[0] == 50.0

    def test_alternates_distinct(self, planner, source, target):
        plans = planner.plan_k(source, target, 6)
        assert len({p.action_ids for p in plans}) == len(plans)

    def test_single_step_composite_is_a_valid_alternate(self, planner, source, target):
        plans = planner.plan_k(source, target, 20)
        assert ("A14",) in {p.action_ids for p in plans}
        a14_plan = next(p for p in plans if p.action_ids == ("A14",))
        assert a14_plan.total_cost == 150.0


class TestLazyPlanner:
    def test_same_optimal_cost_as_dijkstra(self, planner, source, target):
        assert planner.plan_lazy(source, target).total_cost == 50.0

    def test_valid_step_chain(self, planner, source, target):
        plan = planner.plan_lazy(source, target)
        config = source
        for step in plan.steps:
            config = step.action.apply(config)
            assert planner.space.is_safe(config)
        assert config == target

    def test_no_path_raises(self, planner, source, target):
        with pytest.raises(NoSafePathError):
            planner.plan_lazy(target, source)

    def test_expansion_budget_exhaustion_raises(self, planner, source, target):
        with pytest.raises(NoSafePathError):
            planner.plan_lazy(source, target, max_expansions=1)


class TestPlanRendering:
    def test_describe_contains_steps_and_cost(self, planner, source, target):
        text = planner.plan(source, target).describe()
        assert "cost 50" in text
        assert "A2" in text and "replace D1 with D2" in text

    def test_participants(self, planner, source, target, universe):
        plan = planner.plan(source, target)
        by_action = {s.action.action_id: s.participants(universe) for s in plan.steps}
        assert by_action["A2"] == frozenset({"handheld"})
        assert by_action["A1"] == frozenset({"server"})
        assert by_action["A16"] == frozenset({"laptop"})
