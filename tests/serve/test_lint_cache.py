"""Warm lint serving: the digest-pinned ``/v1/lint`` wire cache.

Lint is deterministic, so a repeated request body can be answered from
precomputed bytes.  The cache entry is pinned to the spec digests of
the sources that loaded strictly at store time — evicting a spec drops
every cached lint answer that mentioned it, mirroring the plan wire
cache's can-never-resurrect-a-dropped-spec guarantee.
"""

import pytest

from repro.serve import (
    ControlPlane,
    ErrorEnvelope,
    EvictSpecRequest,
    ServerThread,
    StatsRequest,
    to_wire,
)
from repro.serve.api import lint_request_from_json
from tests.serve.test_http import register, request


@pytest.fixture
def server():
    with ServerThread(ControlPlane(), host="127.0.0.1", port=0) as thread:
        yield thread


class TestLintWireCache:
    """Sans-io semantics of lint_wire_fast / lint_wire_store."""

    def _store(self, control, payload):
        response = control.dispatch(lint_request_from_json(payload))
        wire = to_wire(response)
        control.lint_wire_store(payload, response, wire)
        return wire

    def test_store_then_fast_returns_the_same_bytes(self, video_text):
        control = ControlPlane()
        payload = {"manifest": video_text}
        wire = self._store(control, payload)
        assert control.lint_wire_fast(payload) == wire
        assert control.dispatch(StatsRequest()).service["lint_hits"] == 1

    def test_cold_body_misses(self, video_text):
        control = ControlPlane()
        assert control.lint_wire_fast({"manifest": video_text}) is None

    def test_different_render_formats_cache_separately(self, video_text):
        control = ControlPlane()
        text = self._store(control, {"manifest": video_text})
        sarif = self._store(
            control, {"manifest": video_text, "format": "sarif"}
        )
        assert text != sarif
        assert control.lint_wire_fast({"manifest": video_text}) == text
        assert (
            control.lint_wire_fast(
                {"manifest": video_text, "format": "sarif"}
            )
            == sarif
        )

    def test_store_registers_the_strictly_loadable_spec(self, video_text):
        control = ControlPlane()
        self._store(control, {"manifest": video_text})
        assert control.dispatch(StatsRequest()).service["specs"] == 1

    def test_eviction_invalidates_the_cached_entry(self, video_text):
        control = ControlPlane()
        payload = {"manifest": video_text}
        self._store(control, payload)
        (digest,) = [
            spec["digest"] for spec in control.registry.describe()
        ]
        assert control.dispatch(EvictSpecRequest(spec=digest)).evicted
        # the entry died with its spec: no stale bytes, no hit counted
        assert control.lint_wire_fast(payload) is None
        assert control.dispatch(StatsRequest()).service["lint_hits"] == 0

    def test_defective_sources_cache_without_a_spec_pin(self):
        # a manifest that cannot load strictly still gets warm service —
        # it just has no spec digest to be invalidated through
        control = ControlPlane()
        payload = {"manifest": "[components]\nA @ p1\nA @ p1\n"}
        wire = self._store(control, payload)
        assert control.dispatch(StatsRequest()).service["specs"] == 0
        assert control.lint_wire_fast(payload) == wire

    def test_error_envelopes_are_never_cached(self, video_text):
        control = ControlPlane()
        payload = {"manifest": video_text, "format": "nope"}
        response = control.dispatch(lint_request_from_json(payload))
        assert isinstance(response, ErrorEnvelope)
        control.lint_wire_store(payload, response, to_wire(response))
        assert control.lint_wire_fast(payload) is None

    def test_unknown_fields_are_uncacheable(self, video_text):
        control = ControlPlane()
        payload = {"manifest": video_text, "surprise": 1}
        response = control.dispatch(
            lint_request_from_json({"manifest": video_text})
        )
        control.lint_wire_store(payload, response, to_wire(response))
        assert control.lint_wire_fast(payload) is None


class TestWarmLintOverHttp:
    def test_repeated_lint_hits_the_fast_path(self, server, video_text):
        body = {"manifest": video_text}
        first = request(server.address, "POST", "/v1/lint", body=body)
        second = request(server.address, "POST", "/v1/lint", body=body)
        assert first[0] == second[0] == 200
        assert first[1] == second[1]
        _, stats, _ = request(server.address, "GET", "/v1/stats")
        assert stats["result"]["server"]["fast_hits"] == 1
        assert stats["result"]["service"]["lint_hits"] == 1
        assert stats["result"]["server"]["served"] == 2

    def test_delete_spec_invalidates_the_lint_cache(self, server, video_text):
        digest = register(server, video_text)
        body = {"manifest": video_text}
        request(server.address, "POST", "/v1/lint", body=body)
        request(server.address, "DELETE", f"/v1/specs/{digest}")
        status, again, _ = request(
            server.address, "POST", "/v1/lint", body=body
        )
        assert status == 200
        assert again["result"]["failed"] is False
        _, stats, _ = request(server.address, "GET", "/v1/stats")
        # the re-lint after eviction was a cold run, not a stale hit
        assert stats["result"]["service"]["lint_hits"] == 0
        assert stats["result"]["server"]["fast_hits"] == 0
