"""Asyncio HTTP/1.1 JSON adapter over the sans-io control plane.

Pure stdlib (``asyncio.start_server``); the server owns **no** operation
logic — every route decodes a JSON body into a typed request and hands
it to :meth:`~repro.serve.control.ControlPlane.dispatch`, so the bytes
on the wire are exactly the CLI's ``--json`` output, compacted.

Routes::

    GET    /healthz            liveness (no dispatch)
    GET    /v1/stats           service + registry + server counters
    POST   /v1/specs           register a spec (manifest text or JSON)
    DELETE /v1/specs/<digest>  evict a spec
    POST   /v1/plan            one MAP request
    POST   /v1/plan-batch      many pairs, NDJSON streamed per result
    POST   /v1/verify-paths    path-quantified ptLTL verification
    POST   /v1/lint            static analysis of uploaded manifests
    POST   /v1/trace-check     offline safety check of a trace

Operational behavior:

* **Admission control** — at most ``max_inflight`` dispatches run at
  once; up to ``queue_limit`` more may wait; anything beyond is
  answered ``429`` with an ``overloaded`` envelope instead of letting
  latency collapse.
* **Deadlines** — ``deadline_ms`` (overridable per request with an
  ``X-Deadline-Ms`` header) bounds each dispatch; an expired request is
  answered ``504``/``deadline-exceeded`` while the worker thread is
  left to finish and release its admission slot honestly.
* **Warm fast path** — repeated ``/v1/plan`` bodies are answered from
  the control plane's wire cache directly on the event loop, no
  executor hop; this carries the single-core throughput target.
* **Graceful shutdown** — SIGINT/SIGTERM stop the listener, in-flight
  requests drain (bounded by ``drain_timeout``), then connections
  close; the same close → drain → join shape as
  :meth:`repro.exec.aio.AioAdaptationSystem.shutdown`.
* **Workers** — ``run_server(workers=N)`` binds one listening socket
  and forks N processes that all accept from it (kernel load
  balancing); each worker is shard ``(i, N)`` of the digest space, so a
  spec's warm caches concentrate on its owner.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.serve.api import (
    ErrorEnvelope,
    RegisterSpecRequest,
    EvictSpecRequest,
    Request,
    RequestDecodeError,
    Response,
    StatsRequest,
    StatsResult,
    lint_request_from_json,
    plan_batch_request_from_json,
    plan_request_from_json,
    to_wire,
    trace_check_request_from_json,
    verify_paths_request_from_json,
)
from repro.serve.control import ControlPlane

#: HTTP status for each wire error code (results are always 200)
STATUS_BY_CODE: Dict[str, int] = {
    "bad-request": 400,
    "bad-manifest": 422,
    "bad-property": 422,
    "bad-trace": 422,
    "unsafe-configuration": 422,
    "no-safe-path": 422,
    "unknown-spec": 404,
    "unknown-configuration": 404,
    "unknown-property": 404,
    "not-found": 404,
    "overloaded": 429,
    "deadline-exceeded": 504,
    "internal": 500,
}

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    422: "Unprocessable Entity", 429: "Too Many Requests",
    500: "Internal Server Error", 504: "Gateway Timeout",
}

_MAX_BODY = 16 * 1024 * 1024  # one spec upload is kilobytes; 16M is generous
_JSON = "application/json"
_NDJSON = "application/x-ndjson"


def response_status(response: Response) -> int:
    if isinstance(response, ErrorEnvelope):
        return STATUS_BY_CODE.get(response.code, 500)
    return 200


def _wire_error(code: str, message: str) -> Tuple[int, bytes]:
    envelope = ErrorEnvelope(code, message)
    return STATUS_BY_CODE[code], to_wire(envelope)


def _next_or_none(iterator: Iterator[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    return next(iterator, None)


class ControlPlaneHTTPServer:
    """One process's HTTP front end over a :class:`ControlPlane`.

    Args:
        control: the dispatch core (and its registry/service).
        host/port: bind address (``port=0`` picks a free port) — ignored
            when *sock* is given.
        sock: an already-bound listening socket (workers mode inherits
            one socket across processes).
        max_inflight: dispatches allowed to run concurrently.
        queue_limit: admitted-but-waiting bound; beyond it → 429.
            Defaults to ``max_inflight``.
        deadline_ms: default per-request deadline (None: no deadline).
        drain_timeout: seconds :meth:`shutdown` waits for in-flight
            requests before closing connections.
        counters: shared :class:`~repro.parallel.counters.CounterBlock`
            for fleet-wide ``/v1/stats`` aggregation; this server
            publishes into row *worker_index* after every request and
            sums the columns on the stats route.
        worker_index: this process's row in *counters*.
    """

    def __init__(
        self,
        control: ControlPlane,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: Optional[socket.socket] = None,
        max_inflight: int = 64,
        queue_limit: Optional[int] = None,
        deadline_ms: Optional[float] = None,
        drain_timeout: float = 5.0,
        counters: Optional[Any] = None,
        worker_index: int = 0,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.control = control
        self._host = host
        self._port = port
        self._sock = sock
        self.max_inflight = max_inflight
        self.queue_limit = max_inflight if queue_limit is None else queue_limit
        self.deadline_ms = deadline_ms
        self.drain_timeout = drain_timeout
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, min(32, max_inflight)),
            thread_name_prefix="dispatch",
        )
        self._semaphore = asyncio.Semaphore(max_inflight)
        self._waiting = 0
        self._inflight = 0
        self._stopping = False
        self._stop_event = asyncio.Event()
        self._connections: set = set()
        # counters surfaced under /v1/stats "server"
        self._served = 0
        self._fast_hits = 0
        self._rejected_overload = 0
        self._rejected_deadline = 0
        self._counters = counters
        self._worker_index = worker_index

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])

    def request_stop(self) -> None:
        """Signal-safe stop: wakes :meth:`serve_until_stopped`."""
        if not self._stopping:
            self._stopping = True
            self._stop_event.set()

    async def serve_until_stopped(self) -> None:
        await self._stop_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Stop accepting, drain in-flight requests, close connections."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.drain_timeout
        while self._inflight > 0 and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            writer.close()
        self._executor.shutdown(wait=False)

    def publish_counters(self) -> None:
        """Write this worker's row into the shared counter block.

        Called after every handled request (and before aggregating on
        the stats route), so any worker can answer ``/v1/stats`` with
        column sums that are at most one in-flight request stale per
        peer.  Single writer per row, whole-word counters — no locking.
        """
        if self._counters is None:
            return
        try:
            row = self.control.service.stats().counters()
            row.update(
                served=self._served,
                fast_hits=self._fast_hits,
                rejected_overload=self._rejected_overload,
                rejected_deadline=self._rejected_deadline,
                lint_hits=self.control.lint_hits,
            )
            self._counters.publish(self._worker_index, row)
        except Exception:  # pragma: no cover - stats must never kill serving
            pass

    def server_stats(self) -> Dict[str, Any]:
        return {
            "served": self._served,
            "fast_hits": self._fast_hits,
            "inflight": self._inflight,
            "rejected_overload": self._rejected_overload,
            "rejected_deadline": self._rejected_deadline,
            "max_inflight": self.max_inflight,
            "queue_limit": self.queue_limit,
            "shard": (
                None
                if self.control.registry.shard is None
                else list(self.control.registry.shard)
            ),
        }

    # -- connection loop ---------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while not self._stopping:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    ConnectionResetError,
                    asyncio.LimitOverrunError,
                ):
                    break
                keep_alive = await self._handle_request(head, reader, writer)
                if not keep_alive:
                    break
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_request(self, head: bytes, reader, writer) -> bool:
        """Parse one request and answer it; returns keep-alive."""
        try:
            request_line, *header_lines = head.decode("latin-1").split("\r\n")
            method, path, version = request_line.split(" ", 2)
        except ValueError:
            self._write(writer, 400, _wire_error(
                "bad-request", "malformed request line")[1])
            return False
        headers: Dict[str, str] = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            self._write(writer, 400, _wire_error(
                "bad-request", f"body too large ({length} bytes)")[1])
            return False
        body = await reader.readexactly(length) if length else b""
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
            and not self._stopping
        )
        deadline_ms = self.deadline_ms
        if "x-deadline-ms" in headers:
            try:
                deadline_ms = float(headers["x-deadline-ms"])
            except ValueError:
                self._write(writer, 400, _wire_error(
                    "bad-request", "X-Deadline-Ms must be a number")[1])
                return keep_alive
        try:
            return await self._route(
                method, path, headers, body, writer, keep_alive, deadline_ms
            )
        except Exception as exc:  # noqa: BLE001 — last-resort 500
            self._write(writer, 500, to_wire(ErrorEnvelope(
                "internal", f"{type(exc).__name__}: {exc}")))
            return False
        finally:
            self.publish_counters()

    # -- routing -----------------------------------------------------------------
    async def _route(
        self, method, path, headers, body, writer, keep_alive, deadline_ms
    ) -> bool:
        if path == "/healthz" and method == "GET":
            self._write(writer, 200, b'{"ok":true}', keep_alive=keep_alive)
            return keep_alive
        if path == "/v1/stats" and method == "GET":
            response = self.control.dispatch(StatsRequest())
            if isinstance(response, StatsResult):
                cluster = None
                if self._counters is not None:
                    # publish our own row first so the sums include the
                    # answering worker's latest counters
                    self.publish_counters()
                    cluster = self._counters.aggregate()
                response = dataclasses.replace(
                    response, server=self.server_stats(), cluster=cluster
                )
            self._respond(writer, response, keep_alive)
            return keep_alive
        if path == "/v1/specs" and method == "POST":
            return await self._post_specs(headers, body, writer, keep_alive,
                                          deadline_ms)
        if path.startswith("/v1/specs/") and method == "DELETE":
            digest = path[len("/v1/specs/"):]
            response = self.control.dispatch(EvictSpecRequest(spec=digest))
            self._respond(writer, response, keep_alive)
            return keep_alive
        if path == "/v1/plan" and method == "POST":
            return await self._post_plan(body, writer, keep_alive, deadline_ms)
        if path == "/v1/plan-batch" and method == "POST":
            await self._post_plan_batch(body, writer)
            return False  # NDJSON is close-delimited
        if path == "/v1/verify-paths" and method == "POST":
            return await self._post_json(
                verify_paths_request_from_json, body, writer, keep_alive,
                deadline_ms,
            )
        if path == "/v1/lint" and method == "POST":
            return await self._post_lint(body, writer, keep_alive,
                                         deadline_ms)
        if path == "/v1/trace-check" and method == "POST":
            return await self._post_json(
                trace_check_request_from_json, body, writer, keep_alive,
                deadline_ms,
            )
        status, wire = _wire_error(
            "not-found", f"no route for {method} {path}"
        )
        self._write(writer, status, wire, keep_alive=keep_alive)
        return keep_alive

    def _decode_json(self, body: bytes) -> Any:
        try:
            return json.loads(body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestDecodeError(f"body is not valid JSON: {exc}") from exc

    async def _post_specs(
        self, headers, body, writer, keep_alive, deadline_ms
    ) -> bool:
        # JSON {"manifest": text} or the manifest text itself — whatever
        # the Content-Type says (curl --data-binary @file just works).
        try:
            if _JSON in headers.get("content-type", ""):
                payload = self._decode_json(body)
                if (
                    not isinstance(payload, dict)
                    or not isinstance(payload.get("manifest"), str)
                ):
                    raise RequestDecodeError(
                        "body must be {\"manifest\": \"<text>\"}"
                    )
                text = payload["manifest"]
            else:
                text = body.decode("utf-8")
        except (RequestDecodeError, UnicodeDecodeError) as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=keep_alive)
            return keep_alive
        return await self._dispatch_and_respond(
            RegisterSpecRequest(manifest=text), writer, keep_alive, deadline_ms
        )

    async def _post_plan(self, body, writer, keep_alive, deadline_ms) -> bool:
        try:
            payload = self._decode_json(body)
        except RequestDecodeError as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=keep_alive)
            return keep_alive
        # warm fast lane: answer repeated bodies straight off the loop
        wire = self.control.plan_wire_fast(payload)
        if wire is not None:
            self._fast_hits += 1
            self._served += 1
            self._write(writer, 200, wire, keep_alive=keep_alive)
            return keep_alive
        try:
            request = plan_request_from_json(payload)
        except RequestDecodeError as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=keep_alive)
            return keep_alive
        response = await self._dispatch(request, writer, keep_alive,
                                        deadline_ms)
        if response is None:
            return keep_alive  # rejected (already answered) or shutdown
        wire = to_wire(response)
        self.control.plan_wire_store(payload, response, wire)
        self._served += 1
        self._write(writer, response_status(response), wire,
                    keep_alive=keep_alive)
        return keep_alive

    async def _post_lint(self, body, writer, keep_alive, deadline_ms) -> bool:
        try:
            payload = self._decode_json(body)
        except RequestDecodeError as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=keep_alive)
            return keep_alive
        # warm fast lane: lint is deterministic, so a repeated body is
        # answered from cached bytes without re-running the analyzer
        wire = self.control.lint_wire_fast(payload)
        if wire is not None:
            self._fast_hits += 1
            self._served += 1
            self._write(writer, 200, wire, keep_alive=keep_alive)
            return keep_alive
        try:
            request = lint_request_from_json(payload)
        except RequestDecodeError as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=keep_alive)
            return keep_alive
        response = await self._dispatch(request, writer, keep_alive,
                                        deadline_ms)
        if response is None:
            return keep_alive  # rejected (already answered) or shutdown
        wire = to_wire(response)
        self.control.lint_wire_store(payload, response, wire)
        self._served += 1
        self._write(writer, response_status(response), wire,
                    keep_alive=keep_alive)
        return keep_alive

    async def _post_json(
        self, builder, body, writer, keep_alive, deadline_ms
    ) -> bool:
        try:
            request = builder(self._decode_json(body))
        except RequestDecodeError as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=keep_alive)
            return keep_alive
        return await self._dispatch_and_respond(
            request, writer, keep_alive, deadline_ms
        )

    async def _dispatch_and_respond(
        self, request: Request, writer, keep_alive, deadline_ms
    ) -> bool:
        response = await self._dispatch(request, writer, keep_alive,
                                        deadline_ms)
        if response is not None:
            self._served += 1
            self._respond(writer, response, keep_alive)
        return keep_alive

    async def _dispatch(
        self, request: Request, writer, keep_alive, deadline_ms
    ) -> Optional[Response]:
        """Admission-controlled, deadline-bounded dispatch off the loop.

        Returns ``None`` when the request was already answered here
        (429 rejection or 504 expiry).
        """
        if not await self._admit(writer, keep_alive):
            return None
        loop = asyncio.get_running_loop()
        self._inflight += 1
        future = loop.run_in_executor(
            self._executor, self.control.dispatch, request
        )

        def _done(fut) -> None:
            self._inflight -= 1
            self._semaphore.release()
            if not fut.cancelled():
                fut.exception()  # consume; dispatch never raises anyway

        future.add_done_callback(_done)
        if deadline_ms is None:
            return await future
        try:
            # shield: on expiry the worker thread finishes on its own
            # and _done releases its slot — accounting stays honest.
            return await asyncio.wait_for(
                asyncio.shield(future), deadline_ms / 1000.0
            )
        except asyncio.TimeoutError:
            self._rejected_deadline += 1
            status, wire = _wire_error(
                "deadline-exceeded",
                f"request exceeded its {deadline_ms:g} ms deadline",
            )
            self._write(writer, status, wire, keep_alive=keep_alive)
            return None

    async def _admit(self, writer, keep_alive) -> bool:
        if self._semaphore.locked() and self._waiting >= self.queue_limit:
            self._rejected_overload += 1
            status, wire = _wire_error(
                "overloaded",
                f"server at capacity ({self.max_inflight} in flight, "
                f"{self._waiting} queued)",
            )
            self._write(writer, status, wire, keep_alive=keep_alive)
            return False
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        return True

    async def _post_plan_batch(self, body, writer) -> None:
        try:
            request = plan_batch_request_from_json(self._decode_json(body))
        except RequestDecodeError as exc:
            status, wire = _wire_error("bad-request", str(exc))
            self._write(writer, status, wire, keep_alive=False)
            return
        if not await self._admit(writer, keep_alive=False):
            return
        self._inflight += 1
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: " + _NDJSON.encode("ascii") + b"\r\n"
                b"Connection: close\r\n\r\n"
            )
            loop = asyncio.get_running_loop()
            stream = self.control.plan_batch_stream(request)
            while True:
                item = await loop.run_in_executor(
                    self._executor, _next_or_none, stream
                )
                if item is None:
                    break
                writer.write(
                    json.dumps(
                        item, separators=(",", ":"), sort_keys=True
                    ).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
            self._served += 1
        finally:
            self._inflight -= 1
            self._semaphore.release()

    # -- response writing --------------------------------------------------------
    def _respond(self, writer, response: Response, keep_alive: bool) -> None:
        self._write(
            writer, response_status(response), to_wire(response),
            keep_alive=keep_alive,
        )

    @staticmethod
    def _write(
        writer,
        status: int,
        body: bytes,
        content_type: str = _JSON,
        keep_alive: bool = False,
    ) -> None:
        reason = _REASONS.get(status, "OK")
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n\r\n"
            ).encode("ascii")
            + body
        )


# -- sockets and process fan-out ----------------------------------------------


def create_listen_socket(host: str, port: int, backlog: int = 512):
    """A bound, listening TCP socket workers can inherit across fork."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, port))
    sock.listen(backlog)
    sock.setblocking(False)
    return sock


async def _serve_on(
    sock,
    control: ControlPlane,
    *,
    max_inflight: int,
    queue_limit: Optional[int],
    deadline_ms: Optional[float],
    install_signals: bool = True,
    counters: Optional[Any] = None,
    worker_index: int = 0,
) -> None:
    server = ControlPlaneHTTPServer(
        control,
        sock=sock,
        max_inflight=max_inflight,
        queue_limit=queue_limit,
        deadline_ms=deadline_ms,
        counters=counters,
        worker_index=worker_index,
    )
    await server.start()
    if install_signals:
        import signal as _signal

        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    await server.serve_until_stopped()


def _build_control(
    manifests: Sequence[str],
    *,
    max_specs: int,
    enum_workers: Optional[int],
    shard: Optional[Tuple[int, int]],
) -> ControlPlane:
    from pathlib import Path

    from repro.serve.service import PlanningService

    control = ControlPlane(
        service=PlanningService(workers=enum_workers),
        max_specs=max_specs,
        shard=shard,
    )
    for path in manifests:
        response = control.dispatch(
            RegisterSpecRequest(Path(path).read_text(encoding="utf-8"))
        )
        if isinstance(response, ErrorEnvelope):
            raise SystemExit(f"error: cannot preload {path}: {response.message}")
    return control


def _worker_main(
    sock, index: int, total: int, manifests, options: Dict[str, Any]
) -> None:  # pragma: no cover - exercised in forked children
    control = _build_control(
        manifests,
        max_specs=options["max_specs"],
        enum_workers=options["enum_workers"],
        shard=(index, total) if total > 1 else None,
    )
    asyncio.run(
        _serve_on(
            sock,
            control,
            max_inflight=options["max_inflight"],
            queue_limit=options["queue_limit"],
            deadline_ms=options["deadline_ms"],
            counters=options.get("counters"),
            worker_index=index,
        )
    )


def run_server(
    manifests: Sequence[str] = (),
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 1,
    max_inflight: int = 64,
    queue_limit: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    max_specs: int = 64,
    enum_workers: Optional[int] = None,
    out=None,
) -> int:
    """Blocking server entry point behind ``repro serve``.

    Binds once, prints the address, then serves until SIGINT/SIGTERM —
    in-process for ``workers=1``, else across *workers* forked processes
    sharing the listening socket (each one shard of the digest space).
    """
    import sys

    out = out if out is not None else sys.stdout
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    sock = create_listen_socket(host, port)
    bound = sock.getsockname()
    print(
        f"serving on http://{bound[0]}:{bound[1]} "
        f"({workers} worker(s), max in-flight {max_inflight})",
        file=out,
        flush=True,
    )
    options = {
        "max_specs": max_specs,
        "enum_workers": enum_workers,
        "max_inflight": max_inflight,
        "queue_limit": queue_limit,
        "deadline_ms": deadline_ms,
    }
    if workers == 1:
        try:
            _worker_main(sock, 0, 1, tuple(manifests), options)
        except KeyboardInterrupt:  # pragma: no cover - signal race fallback
            pass
        finally:
            sock.close()
        return 0
    import multiprocessing
    import signal as _signal

    from repro.parallel.counters import CounterBlock

    # One shared counter block, created before forking so every child
    # inherits the attached segment; each worker publishes its own row and
    # /v1/stats on any worker sums the columns into the "cluster" payload.
    counters = CounterBlock(workers)
    options["counters"] = counters
    context = multiprocessing.get_context("fork")
    children = [
        context.Process(
            target=_worker_main,
            args=(sock, index, workers, tuple(manifests), options),
            daemon=False,
        )
        for index in range(workers)
    ]
    for child in children:
        child.start()

    def _forward(signum, frame):  # pragma: no cover - signal path
        for child in children:
            if child.pid is not None:
                try:
                    import os

                    os.kill(child.pid, _signal.SIGTERM)
                except ProcessLookupError:
                    pass

    previous = {
        signum: _signal.signal(signum, _forward)
        for signum in (_signal.SIGINT, _signal.SIGTERM)
    }
    try:
        for child in children:
            child.join()
    finally:
        for signum, handler in previous.items():
            _signal.signal(signum, handler)
        sock.close()
        counters.close()
        counters.unlink()
    return 0


# -- thread-hosted server (tests and benchmarks) -------------------------------


class ServerThread:
    """Run a :class:`ControlPlaneHTTPServer` on a background thread.

    The test suite (no pytest-asyncio) and the HTTP benchmark both need
    a live server next to a same-process client; this wraps the whole
    asyncio lifecycle behind blocking ``start()``/``stop()``.
    """

    def __init__(self, control: ControlPlane, **server_kwargs: Any):
        self.control = control
        self._server_kwargs = server_kwargs
        self.address: Optional[Tuple[str, int]] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[ControlPlaneHTTPServer] = None
        self._thread = threading.Thread(
            target=self._run, name="serve-http", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        server = ControlPlaneHTTPServer(self.control, **self._server_kwargs)
        await server.start()
        self._server = server
        self._loop = asyncio.get_running_loop()
        self.address = server.address
        self._ready.set()
        await server.serve_until_stopped()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._ready.wait(timeout=10)
        if self._failure is not None:
            raise RuntimeError("server failed to start") from self._failure
        if self.address is None:
            raise RuntimeError("server did not come up within 10s")
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._server is not None:
            self._loop.call_soon_threadsafe(self._server.request_stop)
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
