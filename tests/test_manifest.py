"""Tests for the declarative manifest format."""

import pytest

from repro.errors import ParseError
from repro.manifest import dumps, loads, video_manifest_text

MINIMAL = """
[components]
A @ p1 : the app
B1 @ p2
B2 @ p2

[invariants]
presence : A
: A -> B1 | B2
exclusivity : one_of(B1, B2)

[actions]
swap  : B1 -> B2 @ 5 ; switch backends
unswap: B2 -> B1 @ 5
drop  : -B2 @ 1
add   : +B2 @ 1

[configurations]
start = A, B1
goal = 101
"""


class TestLoads:
    def test_components(self):
        manifest = loads(MINIMAL)
        assert manifest.universe.order == ("A", "B1", "B2")
        assert manifest.universe.process_of("A") == "p1"
        assert manifest.universe.component("A").description == "the app"

    def test_default_process(self):
        manifest = loads("[components]\nX\n")
        assert manifest.universe.process_of("X") == "local"

    def test_invariants(self):
        manifest = loads(MINIMAL)
        assert len(manifest.invariants) == 3
        assert manifest.invariants[0].name == "presence"
        assert manifest.invariants.all_hold({"A", "B1"})
        assert not manifest.invariants.all_hold({"A"})

    def test_actions(self):
        manifest = loads(MINIMAL)
        swap = manifest.actions.get("swap")
        assert swap.removes == frozenset({"B1"})
        assert swap.adds == frozenset({"B2"})
        assert swap.cost == 5
        assert swap.description == "switch backends"
        assert manifest.actions.get("drop").removes == frozenset({"B2"})
        assert manifest.actions.get("add").adds == frozenset({"B2"})

    def test_composite_operation(self):
        text = MINIMAL + "\n[actions]\n"  # appending a section continues it
        manifest = loads(
            MINIMAL.replace(
                "add   : +B2 @ 1", "add   : +B2 @ 1\nbig : (A, B1) -> (B2) @ 9"
            )
        )
        big = manifest.actions.get("big")
        assert big.removes == frozenset({"A", "B1"})
        assert big.adds == frozenset({"B2"})

    def test_configurations_by_members_and_bits(self):
        manifest = loads(MINIMAL)
        assert manifest.configurations["start"] == frozenset({"A", "B1"})
        assert manifest.configurations["goal"] == frozenset({"A", "B2"})

    def test_resolve_configuration_forms(self):
        manifest = loads(MINIMAL)
        assert manifest.resolve_configuration("start") == frozenset({"A", "B1"})
        assert manifest.resolve_configuration("110") == frozenset({"A", "B1"})
        assert manifest.resolve_configuration("A, B2") == frozenset({"A", "B2"})

    def test_comments_and_blank_lines_ignored(self):
        manifest = loads("# header\n[components]\n\nX # trailing\n")
        assert "X" in manifest.universe

    def test_planner_integration(self):
        manifest = loads(MINIMAL)
        planner = manifest.planner()
        plan = planner.plan(
            manifest.configurations["start"], manifest.configurations["goal"]
        )
        assert plan.action_ids == ("swap",)


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("X\n", "before any"),
            ("[weird]\n", "unknown section"),
            ("[components]\n", "no [components]"),
            ("[components]\nA\n[invariants]\nA -> Z\n", "unknown components"),
            ("[components]\nA\n[actions]\nbad line\n", "bad action"),
            ("[components]\nA\n[actions]\nx : ?? @ 1\n", "cannot parse"),
            ("[components]\nA\n[actions]\nx : +Z @ 1\n", "unknown components"),
            ("[components]\nA\n[configurations]\njust-a-name\n", "name = value"),
        ],
    )
    def test_bad_manifests(self, text, fragment):
        with pytest.raises(ParseError) as excinfo:
            loads(text)
        assert fragment in str(excinfo.value)


class TestSpans:
    """Parsed entities carry file positions; parse errors point at them."""

    def test_component_spans(self):
        manifest = loads(MINIMAL)
        spans = manifest.spans
        assert spans.components["A"].line == 3  # MINIMAL opens with a newline
        assert spans.components["B2"].line == 5

    def test_invariant_and_action_spans(self):
        manifest = loads(MINIMAL)
        spans = manifest.spans
        assert [s.line for s in spans.invariants] == [8, 9, 10]
        assert spans.actions["swap"].line == 13
        assert spans.configurations["goal"].line == 20

    def test_section_spans(self):
        manifest = loads(MINIMAL)
        assert manifest.spans.sections["components"].line == 2
        assert manifest.spans.sections["configurations"].line == 18

    @pytest.mark.parametrize(
        "text,line",
        [
            # bad invariant expression: previously reported with no location
            ("[components]\nA\n[invariants]\nbad : A &\n", 4),
            # bad configuration value: ditto
            ("[components]\nA\n[configurations]\nc = A, NOPE\n", 4),
            ("[components]\nA\n[configurations]\nc = 0101\n", 4),
            # action errors already carried a line; they keep it
            ("[components]\nA\n[actions]\nx : ?? @ 1\n", 4),
        ],
    )
    def test_parse_errors_carry_line_and_span(self, text, line):
        with pytest.raises(ParseError) as excinfo:
            loads(text)
        assert f"line {line}" in str(excinfo.value)
        assert excinfo.value.span is not None
        assert excinfo.value.span.line == line

    def test_duplicate_component_cites_first_declaration(self):
        with pytest.raises(ParseError) as excinfo:
            loads("[components]\nA\nA\n")
        assert "line 3" in str(excinfo.value)
        assert "line 2" in str(excinfo.value)


class TestCCSSection:
    WITH_CCS = MINIMAL + "\n[ccs]\nseg0 : swap unswap\nseg1 : unswap\n"

    def test_ccs_parsed(self):
        manifest = loads(self.WITH_CCS)
        assert manifest.ccs is not None
        assert manifest.ccs.allowed == (("swap", "unswap"), ("unswap",))

    def test_ccs_round_trips(self):
        manifest = loads(self.WITH_CCS)
        again = loads(dumps(manifest))
        assert again.ccs is not None
        assert again.ccs.allowed == manifest.ccs.allowed

    def test_no_ccs_section_means_none(self):
        assert loads(MINIMAL).ccs is None


class TestRoundTrip:
    def test_minimal_round_trips(self):
        manifest = loads(MINIMAL)
        again = loads(dumps(manifest))
        assert again.universe.order == manifest.universe.order
        assert [i.expr for i in again.invariants] == [
            i.expr for i in manifest.invariants
        ]
        assert [
            (a.action_id, a.removes, a.adds, a.cost) for a in again.actions
        ] == [(a.action_id, a.removes, a.adds, a.cost) for a in manifest.actions]
        assert again.configurations == manifest.configurations

    def test_video_manifest_reproduces_the_paper(self, table1_bits):
        manifest = loads(video_manifest_text())
        planner = manifest.planner()
        got = {planner.universe.to_bits(c) for c in planner.space.enumerate()}
        assert got == set(table1_bits)
        plan = planner.plan(
            manifest.configurations["source"], manifest.configurations["target"]
        )
        assert plan.total_cost == 50.0

    def test_load_path(self, tmp_path):
        from repro.manifest import load_path

        target = tmp_path / "sys.manifest"
        target.write_text(MINIMAL, encoding="utf-8")
        assert "A" in load_path(target).universe


class TestPropertiesSection:
    WITH_PROPERTIES = MINIMAL + """
[properties]
no_b2 : historically(!B2)
liveness : {one_of(B1, B2)} -> once(A)
"""

    def test_properties_parse_into_formulas(self):
        from repro.ltl import Historically, PImplies

        manifest = loads(self.WITH_PROPERTIES)
        assert set(manifest.properties) == {"no_b2", "liveness"}
        assert isinstance(manifest.properties["no_b2"], Historically)
        assert isinstance(manifest.properties["liveness"], PImplies)

    def test_property_named_lookup(self):
        from repro.errors import ConfigurationError

        manifest = loads(self.WITH_PROPERTIES)
        assert manifest.property_named("no_b2") is manifest.properties["no_b2"]
        with pytest.raises(ConfigurationError) as excinfo:
            manifest.property_named("nope")
        assert "liveness" in str(excinfo.value)  # known names are listed

    def test_properties_round_trip(self):
        from repro.ltl import property_to_text

        manifest = loads(self.WITH_PROPERTIES)
        again = loads(dumps(manifest))
        assert {
            name: property_to_text(phi) for name, phi in again.properties.items()
        } == {
            name: property_to_text(phi)
            for name, phi in manifest.properties.items()
        }

    def test_properties_spans_recorded(self):
        manifest = loads(self.WITH_PROPERTIES)
        lines = self.WITH_PROPERTIES.splitlines()
        for name, span in manifest.spans.properties.items():
            assert lines[span.line - 1].startswith(name)

    def test_duplicate_property_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            loads(MINIMAL + "\n[properties]\np : A\np : !A\n")

    def test_bad_formula_rejected_with_line(self):
        with pytest.raises(ParseError):
            loads(MINIMAL + "\n[properties]\nbroken : A & (\n")

    def test_unknown_atom_rejected(self):
        with pytest.raises(ParseError, match="GHOST"):
            loads(MINIMAL + "\n[properties]\nghostly : once(GHOST)\n")

    def test_entry_requires_name_and_formula(self):
        with pytest.raises(ParseError):
            loads(MINIMAL + "\n[properties]\njust a formula\n")

    def test_empty_section_is_fine(self):
        manifest = loads(MINIMAL + "\n[properties]\n")
        assert manifest.properties == {}
