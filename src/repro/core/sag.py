"""The Safe Adaptation Graph (paper §3.1, §4.2 step 2).

"We can construct a safe adaptation graph (SAG), where vertices are all
safe configurations and arcs are all possible adaptation steps connecting
safe configurations."  An arc (config1, config2) exists iff both endpoints
are safe and some adaptive action maps config1 to config2; the arc weight
is that action's cost.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.model import Configuration
from repro.core.space import SafeConfigurationSpace
from repro.errors import UnknownComponentError
from repro.graphs import CSRGraph, Digraph


class LazySAG:
    """Frontier successor generator over the *implicit* SAG (§7).

    Expands ``(config, action)`` neighbors incrementally: for a safe
    mask, :meth:`successors` yields the ``(action_id, cost, next_mask)``
    arcs that :meth:`SafeAdaptationGraph.build` would insert for that
    vertex — same arcs, same action-library order — without ever
    enumerating the safe space or materializing the graph.  A search
    driven by this generator therefore relaxes edges in exactly the
    sequence the eager CSR solver does, which is what makes
    :meth:`AdaptationPlanner.lazy_plan
    <repro.core.planner.AdaptationPlanner.lazy_plan>`'s tie-breaking
    provably identical to the eager path.

    Actions touching components outside the universe are skipped up
    front, exactly as the eager build skips them (their result always
    leaves the universe, so they can never connect two vertices).

    Per-mask adjacency is cached: the A* probe and the exact replay in
    ``lazy_plan`` pay the applicability/safety checks once per frontier
    node, and repeated point queries against the same spec stay warm.
    *space* may be an eager :class:`SafeConfigurationSpace` or a
    :class:`~repro.core.space.LazySafeSpace` — anything with a
    ``universe`` and the memoized ``is_safe_mask`` /
    ``are_safe_masks`` query pair.
    """

    def __init__(self, space, actions: ActionLibrary):
        self._space = space
        self._actions = actions
        self.universe = space.universe
        self._arc_specs = tuple(
            (action.action_id, action.cost, masked)
            for masked, action in zip(actions.compiled_for(self.universe), actions)
            if masked is not None
        )
        self._adjacency: Dict[int, Tuple[Tuple[str, float, int], ...]] = {}

    @property
    def expanded_nodes(self) -> int:
        """Distinct masks whose adjacency has been generated so far."""
        return len(self._adjacency)

    def successors(self, mask: int) -> Tuple[Tuple[str, float, int], ...]:
        """Outgoing arcs of *mask*, in SAG edge-insertion order (cached).

        Applicability is resolved per action, then the surviving result
        masks are safety-checked in **one batched**
        :meth:`~repro.core.space.SafeConfigurationSpace.are_safe_masks`
        call — same verdicts, same arc order, one memo/closure dispatch
        per expansion instead of one per candidate arc.
        """
        cached = self._adjacency.get(mask)
        if cached is None:
            candidates = []
            for action_id, cost, masked in self._arc_specs:
                required = masked.required
                if (mask & required) == required and not (mask & masked.forbidden):
                    result = (mask & ~masked.clear) | masked.set_bits
                    candidates.append((action_id, cost, result))
            verdicts = self._space.are_safe_masks(
                [candidate[2] for candidate in candidates]
            )
            cached = tuple(
                candidate
                for candidate, safe in zip(candidates, verdicts)
                if safe
            )
            self._adjacency[mask] = cached
        return cached

    def banned_view(self, banned_nodes, banned_arcs):
        """A successor function skipping banned masks and banned arcs.

        *banned_nodes* is a set of masks, *banned_arcs* a set of
        ``(source_mask, action_id)`` pairs — the lazy mirror of the
        banned node/edge-id sets Yen's spur queries pass to
        :func:`repro.graphs.csr.k_shortest_paths_csr` (an action id
        identifies at most one arc out of a given mask, so the pair bans
        exactly what banning the CSR edge ids with that label does).
        Filtering preserves the underlying arc order, so a search driven
        by the view relaxes the surviving edges in the same sequence the
        eager banned-set Dijkstra does; the per-mask adjacency cache is
        shared with unfiltered traversals.
        """
        if not banned_nodes and not banned_arcs:
            return self.successors
        successors = self.successors

        def view(mask: int):
            for action_id, cost, result in successors(mask):
                if result in banned_nodes or (mask, action_id) in banned_arcs:
                    continue
                yield action_id, cost, result

        return view


class SafeAdaptationGraph:
    """SAG over safe configurations with adaptive-action labelled arcs."""

    def __init__(self, graph: Digraph, actions: ActionLibrary):
        self._graph = graph
        self._actions = actions
        self._csr: Optional[CSRGraph] = None

    @classmethod
    def build(
        cls,
        space: SafeConfigurationSpace,
        actions: ActionLibrary,
        restrict_to: Optional[Iterable[Configuration]] = None,
    ) -> "SafeAdaptationGraph":
        """Materialize the SAG.

        Args:
            space: the safe-configuration space (provides vertices and the
                safety test for action results).
            actions: the available adaptive actions (provide the arcs).
            restrict_to: optional vertex subset; defaults to the full safe
                set ``space.enumerate()``.
        """
        if restrict_to is None:
            vertices: Tuple[Configuration, ...] = space.enumerate()
        else:
            vertices = tuple(restrict_to)
        graph: Digraph = Digraph()
        for config in vertices:
            graph.add_node(config)
        universe = space.universe
        try:
            vertex_masks = [universe.mask_of(config) for config in vertices]
        except UnknownComponentError:
            # Vertices outside the universe (caller-supplied restrict_to)
            # have no bit encoding; keep the set-based build for them.
            cls._build_arcs_setwise(graph, vertices, actions)
            return cls(graph, actions)
        # Bitmask fast path: the O(|V|·|A|) loop runs on precompiled
        # integer masks — applicability, application, and the target
        # lookup are each a couple of int ops.  Actions touching
        # components outside the universe can never connect two vertices
        # (their result always leaves the universe), so they are skipped,
        # exactly as the set-based build would skip them.
        config_by_mask = dict(zip(vertex_masks, vertices))
        masked_actions = [
            (masked, action)
            for masked, action in zip(actions.compiled_for(universe), actions)
            if masked is not None
        ]
        add_edge = graph.add_edge
        get_target = config_by_mask.get
        for config, mask in zip(vertices, vertex_masks):
            for masked, action in masked_actions:
                required = masked.required
                if (mask & required) == required and not (mask & masked.forbidden):
                    target = get_target((mask & ~masked.clear) | masked.set_bits)
                    if target is not None:
                        add_edge(config, target, action.action_id, action.cost)
        return cls(graph, actions)

    @staticmethod
    def _build_arcs_setwise(
        graph: Digraph,
        vertices: Tuple[Configuration, ...],
        actions: ActionLibrary,
    ) -> None:
        """Reference arc construction over frozensets (fallback path)."""
        vertex_set = set(vertices)
        for config in vertices:
            for action in actions:
                if not action.is_applicable(config):
                    continue
                result = action.apply(config)
                if result in vertex_set:
                    graph.add_edge(config, result, action.action_id, action.cost)

    # -- structure -------------------------------------------------------------
    @property
    def graph(self) -> Digraph:
        return self._graph

    @property
    def csr(self) -> CSRGraph:
        """The graph compiled to CSR arrays (built once, then cached).

        The SAG is frozen after :meth:`build`, so the compiled view never
        goes stale; planners drop the whole SAG (and this view with it)
        when the spec changes.
        """
        if self._csr is None:
            self._csr = CSRGraph.from_digraph(self._graph)
        return self._csr

    @property
    def actions(self) -> ActionLibrary:
        return self._actions

    @property
    def node_count(self) -> int:
        return self._graph.node_count

    @property
    def edge_count(self) -> int:
        return self._graph.edge_count

    def __contains__(self, config: Configuration) -> bool:
        return config in self._graph

    def steps_from(self, config: Configuration) -> Tuple[Tuple[AdaptiveAction, Configuration], ...]:
        """Outgoing adaptation steps: (action, resulting configuration)."""
        return tuple(
            (self._actions.get(edge.label), edge.target)
            for edge in self._graph.out_edges(config)
        )

    def has_step(self, source: Configuration, target: Configuration) -> bool:
        return self._graph.has_edge(source, target)

    def step_actions(self, source: Configuration, target: Configuration) -> Tuple[str, ...]:
        """Ids of every action realizing the arc source→target (parallel arcs)."""
        return self._graph.edge_labels(source, target)

    def edge_list(self) -> List[Tuple[Configuration, str, Configuration]]:
        """All arcs as (source, action id, target), deterministic order."""
        return [
            (edge.source, edge.label, edge.target) for edge in self._graph.edges()
        ]

    def to_dot(
        self,
        universe=None,
        highlight_path: Optional[Iterable[Tuple[Configuration, str, Configuration]]] = None,
        title: str = "Safe Adaptation Graph",
    ) -> str:
        """Render the SAG in Graphviz DOT — a regeneration of Figure 4.

        Args:
            universe: optional :class:`ComponentUniverse` for bit-vector
                node labels (member-list labels otherwise).
            highlight_path: arcs to emphasize (e.g. the MAP's
                ``(source, action id, target)`` triples).
            title: graph label.
        """
        def node_label(config: Configuration) -> str:
            if universe is not None:
                return f"{universe.to_bits(config)}\\n{config.label()}"
            return config.label()

        def node_id(config: Configuration) -> str:
            if universe is not None:
                return f"n{universe.to_bits(config)}"
            return "n" + "_".join(sorted(config.members))

        highlighted = set()
        for src, action_id, dst in highlight_path or ():
            highlighted.add((src, action_id, dst))
        lines = [
            "digraph SAG {",
            f'  label="{title}";',
            "  rankdir=LR;",
            '  node [shape=box, style=rounded, fontname="Helvetica"];',
        ]
        for config in sorted(self._graph.nodes(), key=lambda c: sorted(c.members)):
            lines.append(f'  {node_id(config)} [label="{node_label(config)}"];')
        for edge in self._graph.edges():
            action = self._actions.get(edge.label)
            style = ""
            if (edge.source, edge.label, edge.target) in highlighted:
                style = ", color=red, penwidth=2.5, fontcolor=red"
            lines.append(
                f"  {node_id(edge.source)} -> {node_id(edge.target)} "
                f'[label="{edge.label} ({action.cost:g})"{style}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SafeAdaptationGraph(nodes={self.node_count}, edges={self.edge_count})"
