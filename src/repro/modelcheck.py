"""Exhaustive interleaving exploration of the adaptation protocol.

Property-based tests sample schedules; this module *enumerates* them.
Because the manager and agents are sans-io state machines, a protocol
"world" is a finite value — machine snapshots, the multiset of in-flight
messages, armed timers, per-process component slices, and pending host
obligations — and its nondeterminism is exactly four transition kinds:

* **deliver** any in-flight message (arbitrary reordering included);
* **drop** any in-flight message (up to a loss budget);
* **quiesce** any agent whose host owes a ``local_safe`` (the app reaches
  its safe state at an arbitrary moment);
* **fire** any armed manager timer (arbitrary timing — a conservative
  over-approximation of real clocks, so anything proved here holds for
  every concrete timing).

:class:`ProtocolModelChecker` runs BFS over that graph with state
memoization and checks, in *every* reachable state:

* the committed configuration satisfies the invariants (safety clause 1);
* in-actions execute only on blocked processes (the held-safe
  discipline);
* at quiescent worlds (nothing in flight, no obligations, machines at
  rest) the live component placement equals the committed configuration;
* terminal worlds carry a reported outcome (no deadlock).

This is bounded model checking, not a general proof: the guarantee covers
the given plan, participant set, and loss budget — but within that bound
it covers **all** message reorderings, losses, and timeout races.
"""

from __future__ import annotations

import copy
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.model import Configuration
from repro.core.planner import AdaptationPlan, AdaptationPlanner
from repro.errors import NoSafePathError, ReproError, UnsafeConfigurationError
from repro.protocol.agent import AgentMachine, AgentState
from repro.protocol.effects import (
    AbortReset,
    AdaptationAborted,
    AdaptationComplete,
    AwaitUser,
    BlockProcess,
    CancelTimer,
    Effect,
    ExecuteInAction,
    ExecutePostAction,
    RequestReplan,
    ResumeProcess,
    Send,
    SetTimer,
    StartReset,
    StepCommitted,
    StepRolledBack,
    UndoInAction,
)
from repro.protocol.failures import FailurePolicy, ReplanKind
from repro.protocol.manager import FlushProvider, ManagerMachine, ManagerState, no_flush
from repro.protocol.messages import Envelope, FlushRequest, Message


class ModelCheckError(ReproError):
    """A safety property failed in some reachable interleaving."""

    def __init__(self, message: str, path: Tuple[str, ...] = ()):
        super().__init__(message)
        self.path = path

    def __str__(self) -> str:
        base = super().__str__()
        if not self.path:
            return base
        trail = "\n  ".join(self.path[-15:])
        return f"{base}\ncounterexample (last steps):\n  {trail}"


def _clone_agent(agent: AgentMachine) -> AgentMachine:
    """Fast snapshot: every field value is immutable, so shallow copies of
    the containers suffice (deepcopy is ~50× slower here)."""
    new = AgentMachine.__new__(AgentMachine)
    new.process_id = agent.process_id
    new.manager_id = agent.manager_id
    new.state = agent.state
    new.step_key = agent.step_key
    new.action = agent.action
    new.solo = agent.solo
    new.in_action_applied = agent.in_action_applied
    new._completed = dict(agent._completed)
    return new


def _clone_manager(manager: ManagerMachine) -> ManagerMachine:
    """Fast snapshot of the manager machine (see :func:`_clone_agent`)."""
    new = ManagerMachine.__new__(ManagerMachine)
    new.universe = manager.universe            # shared, read-only
    new.policy = manager.policy                # frozen dataclass
    new.flush_provider = manager.flush_provider
    new.manager_id = manager.manager_id
    new.state = manager.state
    new.plan = manager.plan                    # immutable
    new.plan_id = manager.plan_id
    new._plan_counter = manager._plan_counter
    new.step_index = manager.step_index
    new.attempt = manager.attempt
    new.committed = manager.committed
    new.original_source = manager.original_source
    new.target = manager.target
    new.returning = manager.returning
    new._participants = manager._participants
    new._pending_reset = set(manager._pending_reset)
    new._pending_adapt = set(manager._pending_adapt)
    new._pending_resume = set(manager._pending_resume)
    new._pending_rollback = set(manager._pending_rollback)
    new._resume_sent = manager._resume_sent
    new._retransmits = manager._retransmits
    new._alternates_used = manager._alternates_used
    new._failed_edges = list(manager._failed_edges)
    new._armed_timers = set(manager._armed_timers)
    new._current_key = manager._current_key
    new._inject = manager._inject
    new._await = manager._await
    new.steps_committed = manager.steps_committed
    new.steps_rolled_back = manager.steps_rolled_back
    new._rollback_reason = getattr(manager, "_rollback_reason", "")
    return new


class _World:
    """One protocol state.  Mutable; cloned before every transition."""

    def __init__(self, manager, agents, components, planner):
        self.manager: ManagerMachine = manager
        self.agents: Dict[str, AgentMachine] = agents
        self.components: Dict[str, Set[str]] = components
        self.planner = planner  # shared, stateless for our purposes
        self.in_flight: List[Envelope] = []
        self.blocked: Dict[str, bool] = {p: False for p in agents}
        self.quiesce_pending: Dict[str, Optional[str]] = {p: None for p in agents}
        self.armed_timers: Set[str] = set()
        self.outcome: Optional[str] = None
        self.drops_used = 0
        self.path: Tuple[str, ...] = ()

    # -- cloning & fingerprints -------------------------------------------------
    def clone(self) -> "_World":
        new = _World.__new__(_World)
        new.manager = _clone_manager(self.manager)
        new.agents = {p: _clone_agent(a) for p, a in self.agents.items()}
        new.components = {p: set(c) for p, c in self.components.items()}
        new.planner = self.planner
        new.in_flight = list(self.in_flight)
        new.blocked = dict(self.blocked)
        new.quiesce_pending = dict(self.quiesce_pending)
        new.armed_timers = set(self.armed_timers)
        new.outcome = self.outcome
        new.drops_used = self.drops_used
        new.path = self.path
        return new

    def fingerprint(self) -> Tuple:
        manager = self.manager
        agents = tuple(
            (
                pid,
                agent.state.value,
                agent.step_key,
                agent.solo,
                agent.in_action_applied,
                tuple(sorted(agent._completed)),
            )
            for pid, agent in sorted(self.agents.items())
        )
        flights = tuple(
            sorted(
                (e.source, e.destination, repr(e.message)) for e in self.in_flight
            )
        )
        return (
            manager.state.value,
            manager.step_index,
            manager.attempt,
            manager.plan_id,
            manager._current_key,
            tuple(sorted(manager._pending_adapt)),
            tuple(sorted(manager._pending_resume)),
            tuple(sorted(manager._pending_rollback)),
            manager._resume_sent,
            manager._retransmits,
            manager.returning,
            manager._alternates_used,
            manager.committed.members if manager.committed else None,
            agents,
            flights,
            tuple(sorted((p, frozenset(c)) for p, c in self.components.items())),
            tuple(sorted(self.blocked.items())),
            tuple(sorted((p, k) for p, k in self.quiesce_pending.items())),
            tuple(sorted(self.armed_timers)),
            self.outcome,
            self.drops_used,
        )


class ProtocolModelChecker:
    """BFS over all protocol interleavings for one plan."""

    def __init__(
        self,
        planner: AdaptationPlanner,
        plan: AdaptationPlan,
        *,
        max_drops: int = 0,
        flush_provider: FlushProvider = no_flush,
        policy: Optional[FailurePolicy] = None,
        max_states: int = 500_000,
        replan_k: int = 4,
        timer_mode: str = "calibrated",
    ):
        """
        Args:
            timer_mode: when manager timers may fire.

                * ``"calibrated"`` (default) — only after a message has
                  actually been dropped, or when nothing else can move
                  (models timeouts tuned above the worst-case delay, the
                  paper's §4.4 deployment assumption; keeps the space
                  tractable);
                * ``"free"`` — at any moment (full timing
                  over-approximation; exponential, use for tiny plans).
        """
        if timer_mode not in ("calibrated", "free"):
            raise ValueError(f"unknown timer_mode {timer_mode!r}")
        self.planner = planner
        self.plan = plan
        self.max_drops = max_drops
        self.flush_provider = flush_provider
        self.policy = policy or FailurePolicy(step_retries=1, max_alternate_plans=1,
                                              max_retransmits=1,
                                              max_post_resume_retransmits=2)
        self.max_states = max_states
        self.replan_k = replan_k
        self.timer_mode = timer_mode
        self.states_explored = 0
        self.terminal_outcomes: Dict[str, int] = {}

    # ------------------------------------------------------------------ effects
    def _dispatch_manager(self, world: _World, effects: List[Effect]) -> None:
        queue = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, Send):
                world.in_flight.append(
                    Envelope("manager", effect.destination, effect.message)
                )
            elif isinstance(effect, SetTimer):
                world.armed_timers.add(effect.name)
            elif isinstance(effect, CancelTimer):
                world.armed_timers.discard(effect.name)
            elif isinstance(effect, StepCommitted):
                pass  # manager.committed already updated by the machine
            elif isinstance(effect, StepRolledBack):
                pass
            elif isinstance(effect, RequestReplan):
                queue.extend(self._replan(world, effect))
            elif isinstance(effect, AdaptationComplete):
                world.outcome = "complete"
            elif isinstance(effect, AdaptationAborted):
                world.outcome = "aborted"
            elif isinstance(effect, AwaitUser):
                world.outcome = "await_user"
            else:  # pragma: no cover - defensive
                raise ModelCheckError(f"unhandled manager effect {effect!r}", world.path)

    def _replan(self, world: _World, request: RequestReplan) -> List[Effect]:
        machine = world.manager
        destination = (
            machine.target
            if request.kind == ReplanKind.ALTERNATE_TO_TARGET
            else machine.original_source
        )
        assert destination is not None
        if request.current == destination:
            return machine.on_new_plan(
                AdaptationPlan(request.current, destination, (), 0.0)
            )
        try:
            candidates = self.planner.plan_k(request.current, destination, self.replan_k)
        except (NoSafePathError, UnsafeConfigurationError):
            return machine.on_no_plan()
        failed = set(request.failed_edges)
        for plan in candidates:
            if all(
                (step.source, step.action.action_id) not in failed
                for step in plan.steps
            ):
                return machine.on_new_plan(plan)
        return machine.on_no_plan()

    def _dispatch_agent(self, world: _World, pid: str, effects: List[Effect]) -> None:
        agent = world.agents[pid]
        queue = deque(effects)
        while queue:
            effect = queue.popleft()
            if isinstance(effect, Send):
                world.in_flight.append(Envelope(pid, effect.destination, effect.message))
            elif isinstance(effect, StartReset):
                world.quiesce_pending[pid] = effect.step_key
            elif isinstance(effect, AbortReset):
                if world.quiesce_pending[pid] == effect.step_key:
                    world.quiesce_pending[pid] = None
            elif isinstance(effect, BlockProcess):
                world.blocked[pid] = True
            elif isinstance(effect, ResumeProcess):
                world.blocked[pid] = False
                queue.extend(agent.on_resumed(effect.step_key))
            elif isinstance(effect, ExecuteInAction):
                if not world.blocked[pid]:
                    raise ModelCheckError(
                        f"in-action {effect.action.action_id} executed on "
                        f"unblocked process {pid}",
                        world.path,
                    )
                self._apply_slice(world, pid, effect.action, inverse=False)
                queue.extend(agent.on_in_action_applied(effect.step_key))
            elif isinstance(effect, UndoInAction):
                self._apply_slice(world, pid, effect.action, inverse=True)
                queue.extend(agent.on_undone(effect.step_key))
            elif isinstance(effect, ExecutePostAction):
                pass
            else:  # pragma: no cover - defensive
                raise ModelCheckError(f"unhandled agent effect {effect!r}", world.path)

    def _apply_slice(self, world: _World, pid: str, action, inverse: bool) -> None:
        universe = self.planner.universe
        removes = {n for n in (action.adds if inverse else action.removes)
                   if universe.process_of(n) == pid}
        adds = {n for n in (action.removes if inverse else action.adds)
                if universe.process_of(n) == pid}
        missing = removes - world.components[pid]
        if missing:
            raise ModelCheckError(
                f"{pid}: slice removes absent components {sorted(missing)}",
                world.path,
            )
        world.components[pid] -= removes
        world.components[pid] |= adds

    # ------------------------------------------------------------------ invariants
    def _check(self, world: _World) -> None:
        committed = world.manager.committed
        if committed is not None and not self.planner.space.is_safe(committed):
            raise ModelCheckError(
                f"committed configuration {committed.label()} violates invariants",
                world.path,
            )
        if world.outcome is not None and self._quiescent(world):
            if world.outcome in ("complete", "aborted"):
                live = set()
                for pieces in world.components.values():
                    live |= pieces
                if committed is not None and live != set(committed.members):
                    raise ModelCheckError(
                        f"live placement {sorted(live)} != committed "
                        f"{committed.label()} at outcome {world.outcome}",
                        world.path,
                    )

    def _quiescent(self, world: _World) -> bool:
        return (
            not world.in_flight
            and all(k is None for k in world.quiesce_pending.values())
        )

    # ------------------------------------------------------------------ transitions
    def _successors(self, world: _World):
        if world.outcome is not None and self._quiescent(world):
            return  # terminal
        progress = False
        # Identical in-flight envelopes (retransmission duplicates) are
        # interchangeable: branching on each copy multiplies the space for
        # no new behavior, so branch once per *distinct* envelope.
        seen_envelopes: Set[Tuple] = set()
        for index, envelope in enumerate(world.in_flight):
            key = (envelope.source, envelope.destination, envelope.message)
            if key in seen_envelopes:
                continue
            seen_envelopes.add(key)
            progress = True
            yield f"deliver {envelope.destination}<-{type(envelope.message).__name__}", \
                self._deliver(world, index)
            if world.drops_used < self.max_drops:
                dropped = world.clone()
                removed = dropped.in_flight.pop(index)
                dropped.drops_used += 1
                dropped.path = world.path + (
                    f"drop {removed.destination}<-{type(removed.message).__name__}",
                )
                yield "drop", dropped
        for pid, step_key in world.quiesce_pending.items():
            if step_key is not None:
                progress = True
                yield f"quiesce {pid}", self._quiesce(world, pid, step_key)
        timers_enabled = self.timer_mode == "free" or world.drops_used > 0 or not progress
        if timers_enabled:
            for timer in sorted(world.armed_timers):
                yield f"timer {timer}", self._fire(world, timer)

    def _deliver(self, world: _World, index: int) -> _World:
        new = world.clone()
        envelope = new.in_flight.pop(index)
        new.path = world.path + (
            f"deliver {envelope.destination}<-{type(envelope.message).__name__}"
            f"({envelope.message.step_key})",
        )
        if envelope.destination == "manager":
            self._dispatch_manager(new, new.manager.on_message(envelope.message))
        else:
            if isinstance(envelope.message, FlushRequest):
                return new  # flush markers are data-plane; no-op in the model
            agent = new.agents[envelope.destination]
            self._dispatch_agent(
                new, envelope.destination, agent.on_message(envelope.message)
            )
        return new

    def _quiesce(self, world: _World, pid: str, step_key: str) -> _World:
        new = world.clone()
        new.quiesce_pending[pid] = None
        new.path = world.path + (f"quiesce {pid}({step_key})",)
        self._dispatch_agent(new, pid, new.agents[pid].on_local_safe(step_key))
        return new

    def _fire(self, world: _World, timer: str) -> _World:
        new = world.clone()
        new.armed_timers.discard(timer)
        new.path = world.path + (f"timer {timer}",)
        self._dispatch_manager(new, new.manager.on_timeout(timer))
        return new

    # ------------------------------------------------------------------ exploration
    def _initial_world(self) -> _World:
        universe = self.planner.universe
        source = self.plan.source
        participants = set()
        for step in self.plan.steps:
            participants |= step.participants(universe)
        # agents for every process in the universe (cheap, uniform)
        agents = {p: AgentMachine(p, "manager") for p in universe.processes()}
        components = {
            p: {n for n in source.members if universe.process_of(n) == p}
            for p in universe.processes()
        }
        manager = ManagerMachine(
            universe, policy=self.policy, flush_provider=self.flush_provider
        )
        world = _World(manager, agents, components, self.planner)
        self._dispatch_manager(world, manager.start(self.plan))
        return world

    def run(self) -> Dict[str, int]:
        """Explore everything; returns the terminal-outcome histogram.

        Raises:
            ModelCheckError: some reachable interleaving violates a
                property (the error carries the counterexample path), or
                a deadlock/state-space bound is hit.
        """
        initial = self._initial_world()
        self._check(initial)
        queue = deque([initial])
        seen: Set[Tuple] = {initial.fingerprint()}
        self.states_explored = 0
        self.terminal_outcomes = {}
        while queue:
            world = queue.popleft()
            self.states_explored += 1
            if self.states_explored > self.max_states:
                raise ModelCheckError(
                    f"state-space bound exceeded ({self.max_states}); "
                    "tighten the policy caps or lower max_drops"
                )
            successors = list(self._successors(world))
            if not successors:
                if world.outcome is None:
                    raise ModelCheckError("deadlock: no outcome and no transitions",
                                          world.path)
                self.terminal_outcomes[world.outcome] = (
                    self.terminal_outcomes.get(world.outcome, 0) + 1
                )
                continue
            for _, successor in successors:
                self._check(successor)
                fingerprint = successor.fingerprint()
                if fingerprint not in seen:
                    seen.add(fingerprint)
                    queue.append(successor)
        return dict(self.terminal_outcomes)
