"""Adaptive component runtime (paper §2 background, realized in Python).

Adaptive Java gives every component three interfaces: *invocations*
(normal operations), *refractions* (observe internal state), and
*transmutations* (modify internal structure/behavior).  MetaSockets are
built on that model: sockets whose internal filter pipeline can be
recomposed at run time.

This package is the Python substitute: :class:`AdaptiveComponent` exposes
explicit refraction/transmutation registries, :class:`Filter` /
:class:`FilterChain` implement the recomposable pipeline, and
:class:`SendMetaSocket` / :class:`RecvMetaSocket` wrap chains around a
transport, exactly the structure of Figure 3's video pipeline.
"""

from repro.components.base import AdaptiveComponent, absorb
from repro.components.filters import Filter, FilterChain, PassthroughFilter
from repro.components.metasocket import RecvMetaSocket, SendMetaSocket

__all__ = [
    "AdaptiveComponent",
    "absorb",
    "Filter",
    "FilterChain",
    "PassthroughFilter",
    "SendMetaSocket",
    "RecvMetaSocket",
]
