"""The compiled property IR: ptLTL lowered to a slot program over ints.

:class:`PTLTLMonitor` walks the AST per step — a dict allocation, an
id-keyed write and a Python method call per subformula.  Paths, lint,
the planning service, and offline trace checking all evaluate the *same*
property thousands of times over configuration masks, so the formula is
compiled **once per spec** into a :class:`CompiledProperty`:

* every unique subformula gets one bit slot, children before parents
  (the AST's post-order);
* atoms lower through :func:`repro.expr.compile.compile_expr` — a
  ``Prop`` becomes the component's bit test, a ``StateProp`` reuses the
  exact mask closures the invariants compile to;
* the per-step state is a single int (the previous step's slot values);
  the slot table is specialized into one straight-line ``step`` function
  (a couple of int ops per slot, ``Prop`` bit tests inlined) — O(formula)
  per step with no allocation beyond two ints and no per-slot dispatch.

The recursive-update semantics are byte-for-byte those of
``PTLTLMonitor.step``: ``Once``/``Historically``/``Since`` read their
own slot's previous value; ``Previously`` reads its own slot too, where
the state packing stored the *operand's* value from the previous step
(reading the operand's slot directly would leak a ``Historically``
operand's vacuous-true initial bit into the first step).
``initial_state`` sets the ``Historically`` slots (vacuously true before
the first step) and nothing else.  The hypothesis suite pins
``CompiledProperty == PTLTLMonitor`` on random formulas and streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.expr.ast import Atom
from repro.expr.compile import compile_expr
from repro.ltl.ast import (
    Historically,
    Once,
    PAnd,
    PFormula,
    PImplies,
    PNot,
    POr,
    Previously,
    Prop,
    Since,
    StateProp,
)

#: slot opcodes (kept tiny: the step loop switches on small ints)
_ATOM, _NOT, _AND, _OR, _IMPLIES, _PREV, _ONCE, _HIST, _SINCE = range(9)


class CompiledProperty:
    """One ptLTL formula compiled against a fixed name→bit mapping.

    Args:
        formula: the property AST.
        bits: name→bit mapping the atoms compile against — a universe's
            :attr:`~repro.core.model.ComponentUniverse.atom_bits` for
            configuration checking, or any assignment of distinct bits to
            event names for stream monitoring (:func:`compile_property`
            builds one automatically).  Names missing from the mapping
            compile to constant-false, exactly as invariant compilation
            treats out-of-universe components.
    """

    __slots__ = (
        "formula", "bits", "initial_state", "_program", "_root",
        "_step_fn", "_run_fn", "_first_violation_fn",
    )

    def __init__(self, formula: PFormula, bits: Mapping[str, int]):
        self.formula = formula
        self.bits = dict(bits)
        slot_of: Dict[int, int] = {}
        program: List[Tuple[int, int, int, object]] = []
        initial = 0
        for sub in formula.subformulas():
            if id(sub) in slot_of:
                continue
            index = len(program)
            slot_of[id(sub)] = index
            if isinstance(sub, Prop):
                program.append((_ATOM, bits.get(sub.name, 0), 0, None))
            elif isinstance(sub, StateProp):
                program.append((_ATOM, 0, 0, compile_expr(sub.expr, bits)))
            elif isinstance(sub, PNot):
                program.append((_NOT, slot_of[id(sub.operand)], 0, None))
            elif isinstance(sub, PAnd):
                program.append(
                    (_AND, slot_of[id(sub.left)], slot_of[id(sub.right)], None)
                )
            elif isinstance(sub, POr):
                program.append(
                    (_OR, slot_of[id(sub.left)], slot_of[id(sub.right)], None)
                )
            elif isinstance(sub, PImplies):
                program.append(
                    (_IMPLIES, slot_of[id(sub.left)], slot_of[id(sub.right)], None)
                )
            elif isinstance(sub, Previously):
                program.append((_PREV, slot_of[id(sub.operand)], 0, None))
            elif isinstance(sub, Once):
                program.append((_ONCE, slot_of[id(sub.operand)], 0, None))
            elif isinstance(sub, Historically):
                program.append((_HIST, slot_of[id(sub.operand)], 0, None))
                initial |= 1 << index
            elif isinstance(sub, Since):
                program.append(
                    (_SINCE, slot_of[id(sub.left)], slot_of[id(sub.right)], None)
                )
            else:  # pragma: no cover - new operators must extend the compiler
                raise TypeError(f"cannot compile {type(sub).__name__}")
        self._program = tuple(program)
        self._root = slot_of[id(formula)]
        self.initial_state = initial
        self._specialize()

    def _specialize(self) -> None:
        """Unroll the slot table into straight-line evaluation functions.

        Dispatching over opcodes per slot costs more than the slot work
        itself, so the table is rendered to Python source — one binding
        per slot, ``Prop`` bit tests inlined, ``StateProp`` closures
        called — and compiled once.  Three functions come out of the one
        slot rendering: a single ``step`` transition, and whole-sequence
        ``run`` / ``first_violation`` loops that keep the per-step work
        free of function-call overhead — those loops are the hot path of
        path checking, lint's SA5xx stage, and offline trace checking.
        """
        namespace: Dict[str, object] = {}
        body: List[str] = []
        for index, (kind, a, b, fn) in enumerate(self._program):
            if kind == _ATOM:
                if fn is None:  # Prop: inline the bit test (a is the bit)
                    expr = f"1 if mask & {a} else 0" if a else "0"
                else:  # StateProp: the invariant-grade mask closure
                    namespace[f"_f{index}"] = fn
                    expr = f"1 if _f{index}(mask) else 0"
            elif kind == _NOT:
                expr = f"v{a} ^ 1"
            elif kind == _AND:
                expr = f"v{a} & v{b}"
            elif kind == _OR:
                expr = f"v{a} | v{b}"
            elif kind == _IMPLIES:
                expr = f"(v{a} ^ 1) | v{b}"
            elif kind == _PREV:
                # reads its OWN slot, where the pack below stored the
                # operand's value from the previous step — reading the
                # operand's slot would leak a Historically operand's
                # vacuous-true initial bit into the first step
                expr = f"(state >> {index}) & 1"
            elif kind == _ONCE:
                expr = f"v{a} | ((state >> {index}) & 1)"
            elif kind == _HIST:
                expr = f"v{a} & (state >> {index}) & 1"
            else:  # _SINCE
                expr = f"v{b} | (v{a} & (state >> {index}) & 1)"
            body.append(f"v{index} = {expr}")
        # next-state packing: only temporal slots are ever read back from
        # the state, so dead bits are dropped from the pack.  Slot i
        # usually carries its own value; a Previously slot instead
        # carries its operand's current value (what the next step's
        # _PREV read needs).
        parts = []
        for index, (kind, a, _b, _fn) in enumerate(self._program):
            if kind in (_ONCE, _HIST, _SINCE):
                value = f"v{index}"
            elif kind == _PREV:
                value = f"v{a}"
            else:
                continue
            parts.append(f"{value} << {index}" if index else value)
        packed = " | ".join(parts) or "0"
        root = f"v{self._root}"

        def block(lines: List[str], pad: str) -> str:
            return "".join(pad + line + "\n" for line in lines)

        source = (
            "def _step(mask, state):\n"
            + block(body, "    ")
            + f"    return {root}, {packed}\n"
            + "def _run(masks, state):\n"
            + "    values = []\n"
            + "    append = values.append\n"
            + "    for mask in masks:\n"
            + block(body, "        ")
            + f"        state = {packed}\n"
            + f"        append({root} == 1)\n"
            + "    return values\n"
            + "def _first_violation(masks, state):\n"
            + "    index = 0\n"
            + "    for mask in masks:\n"
            + block(body, "        ")
            + f"        state = {packed}\n"
            + f"        if not {root}:\n"
            + "            return index\n"
            + "        index += 1\n"
            + "    return None\n"
        )
        exec(source, namespace)  # noqa: S102 - self-generated source
        self._step_fn = namespace["_step"]
        self._run_fn = namespace["_run"]
        self._first_violation_fn = namespace["_first_violation"]

    def step(self, mask: int, state: int) -> Tuple[bool, int]:
        """One transition: ``(value, next_state)`` for a step's bitmask."""
        value, now = self._step_fn(mask, state)
        return bool(value), now

    # -- whole-sequence helpers (paths, traces) ---------------------------------
    def mask_of(self, names: Iterable[str]) -> int:
        """Encode a step's name set against this property's bit mapping."""
        bits = self.bits
        mask = 0
        for name in names:
            mask |= bits.get(name, 0)
        return mask

    def holds_on(self, mask: int) -> bool:
        """Single-configuration check: the formula on the length-1 path."""
        value, _ = self.step(mask, self.initial_state)
        return value

    def run(self, masks: Sequence[int]) -> List[bool]:
        """Per-step values over a mask sequence (compiled ``Monitor.run``)."""
        return self._run_fn(masks, self.initial_state)

    def first_violation(self, masks: Sequence[int]) -> Optional[int]:
        """Index of the first step where the formula is false, else None."""
        return self._first_violation_fn(masks, self.initial_state)

    def monitor(self) -> "CompiledMonitor":
        """A fresh stateful stepper sharing this compiled program."""
        return CompiledMonitor(self)


class CompiledMonitor:
    """Stateful stream evaluator over a :class:`CompiledProperty`.

    API-compatible with :class:`~repro.ltl.monitor.PTLTLMonitor`
    (``step``/``run``/``steps``/``value``), so it can drive a
    :class:`~repro.ltl.monitor.TemporalObserver` — the online surface
    running on the same compiled core as paths, lint, and trace check.
    """

    __slots__ = ("compiled", "state", "steps", "value")

    def __init__(self, compiled: CompiledProperty):
        self.compiled = compiled
        self.state = compiled.initial_state
        self.steps = 0
        self.value: Optional[bool] = None

    @property
    def formula(self) -> PFormula:
        return self.compiled.formula

    def step(self, events: Iterable[str]) -> bool:
        """Feed one step's event set; returns the formula's current value."""
        return self.step_mask(self.compiled.mask_of(events))

    def step_mask(self, mask: int) -> bool:
        """Feed one step already encoded as a bitmask."""
        value, self.state = self.compiled._step_fn(mask, self.state)
        self.value = value == 1
        self.steps += 1
        return self.value

    def run(self, trace: Iterable[Iterable[str]]) -> List[bool]:
        return [self.step(events) for events in trace]


def compile_property(
    formula: PFormula, bits: Optional[Mapping[str, int]] = None
) -> CompiledProperty:
    """Compile a formula; auto-assigns bits to its atoms when none given.

    Pass a universe's ``atom_bits`` to evaluate over configuration masks;
    with ``bits=None`` every name the formula observes gets a distinct
    bit (sorted order), which is what event-stream monitoring needs.
    """
    if bits is None:
        bits = {name: 1 << i for i, name in enumerate(sorted(formula.atoms()))}
    return CompiledProperty(formula, bits)
