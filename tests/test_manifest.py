"""Tests for the declarative manifest format."""

import pytest

from repro.errors import ParseError
from repro.manifest import dumps, loads, video_manifest_text

MINIMAL = """
[components]
A @ p1 : the app
B1 @ p2
B2 @ p2

[invariants]
presence : A
: A -> B1 | B2
exclusivity : one_of(B1, B2)

[actions]
swap  : B1 -> B2 @ 5 ; switch backends
unswap: B2 -> B1 @ 5
drop  : -B2 @ 1
add   : +B2 @ 1

[configurations]
start = A, B1
goal = 101
"""


class TestLoads:
    def test_components(self):
        manifest = loads(MINIMAL)
        assert manifest.universe.order == ("A", "B1", "B2")
        assert manifest.universe.process_of("A") == "p1"
        assert manifest.universe.component("A").description == "the app"

    def test_default_process(self):
        manifest = loads("[components]\nX\n")
        assert manifest.universe.process_of("X") == "local"

    def test_invariants(self):
        manifest = loads(MINIMAL)
        assert len(manifest.invariants) == 3
        assert manifest.invariants[0].name == "presence"
        assert manifest.invariants.all_hold({"A", "B1"})
        assert not manifest.invariants.all_hold({"A"})

    def test_actions(self):
        manifest = loads(MINIMAL)
        swap = manifest.actions.get("swap")
        assert swap.removes == frozenset({"B1"})
        assert swap.adds == frozenset({"B2"})
        assert swap.cost == 5
        assert swap.description == "switch backends"
        assert manifest.actions.get("drop").removes == frozenset({"B2"})
        assert manifest.actions.get("add").adds == frozenset({"B2"})

    def test_composite_operation(self):
        text = MINIMAL + "\n[actions]\n"  # appending a section continues it
        manifest = loads(
            MINIMAL.replace(
                "add   : +B2 @ 1", "add   : +B2 @ 1\nbig : (A, B1) -> (B2) @ 9"
            )
        )
        big = manifest.actions.get("big")
        assert big.removes == frozenset({"A", "B1"})
        assert big.adds == frozenset({"B2"})

    def test_configurations_by_members_and_bits(self):
        manifest = loads(MINIMAL)
        assert manifest.configurations["start"] == frozenset({"A", "B1"})
        assert manifest.configurations["goal"] == frozenset({"A", "B2"})

    def test_resolve_configuration_forms(self):
        manifest = loads(MINIMAL)
        assert manifest.resolve_configuration("start") == frozenset({"A", "B1"})
        assert manifest.resolve_configuration("110") == frozenset({"A", "B1"})
        assert manifest.resolve_configuration("A, B2") == frozenset({"A", "B2"})

    def test_comments_and_blank_lines_ignored(self):
        manifest = loads("# header\n[components]\n\nX # trailing\n")
        assert "X" in manifest.universe

    def test_planner_integration(self):
        manifest = loads(MINIMAL)
        planner = manifest.planner()
        plan = planner.plan(
            manifest.configurations["start"], manifest.configurations["goal"]
        )
        assert plan.action_ids == ("swap",)


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("X\n", "before any"),
            ("[weird]\n", "unknown section"),
            ("[components]\n", "no [components]"),
            ("[components]\nA\n[invariants]\nA -> Z\n", "unknown components"),
            ("[components]\nA\n[actions]\nbad line\n", "bad action"),
            ("[components]\nA\n[actions]\nx : ?? @ 1\n", "cannot parse"),
            ("[components]\nA\n[actions]\nx : +Z @ 1\n", "unknown components"),
            ("[components]\nA\n[configurations]\njust-a-name\n", "name = value"),
        ],
    )
    def test_bad_manifests(self, text, fragment):
        with pytest.raises(ParseError) as excinfo:
            loads(text)
        assert fragment in str(excinfo.value)


class TestRoundTrip:
    def test_minimal_round_trips(self):
        manifest = loads(MINIMAL)
        again = loads(dumps(manifest))
        assert again.universe.order == manifest.universe.order
        assert [i.expr for i in again.invariants] == [
            i.expr for i in manifest.invariants
        ]
        assert [
            (a.action_id, a.removes, a.adds, a.cost) for a in again.actions
        ] == [(a.action_id, a.removes, a.adds, a.cost) for a in manifest.actions]
        assert again.configurations == manifest.configurations

    def test_video_manifest_reproduces_the_paper(self, table1_bits):
        manifest = loads(video_manifest_text())
        planner = manifest.planner()
        got = {planner.universe.to_bits(c) for c in planner.space.enumerate()}
        assert got == set(table1_bits)
        plan = planner.plan(
            manifest.configurations["source"], manifest.configurations["target"]
        )
        assert plan.total_cost == 50.0

    def test_load_path(self, tmp_path):
        from repro.manifest import load_path

        target = tmp_path / "sys.manifest"
        target.write_text(MINIMAL, encoding="utf-8")
        assert "A" in load_path(target).universe
