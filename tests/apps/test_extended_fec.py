"""Tests for the FEC-extended video system (adaptable loss resilience)."""

import pytest

from repro.apps.video.extended import (
    DEFAULT_FEC_K,
    FEC_COMPONENTS,
    extended_actions,
    extended_invariants,
    extended_planner,
    extended_source,
    extended_target,
    extended_universe,
)
from repro.apps.video.scenario import VideoScenario, build_video_cluster
from repro.sim.net import BernoulliLoss


class TestExtendedModel:
    def test_universe_extends_paper(self):
        universe = extended_universe()
        assert len(universe) == 10
        assert universe.process_of("FE") == "server"
        assert universe.process_of("FH") == "handheld"
        assert universe.process_of("FL") == "laptop"

    def test_fec_is_all_or_nothing(self):
        invariants = extended_invariants()
        base = extended_source().members
        assert invariants.all_hold(base)
        assert invariants.all_hold(base | set(FEC_COMPONENTS))
        assert not invariants.all_hold(base | {"FE"})
        assert not invariants.all_hold(base | {"FH", "FL"})
        assert not invariants.all_hold(base | {"FE", "FH"})

    def test_safe_space_doubles(self):
        planner = extended_planner()
        assert planner.space.count() == 16  # paper's 8 × {FEC, no FEC}

    def test_fec_triple_actions_connect_the_layers(self):
        planner = extended_planner()
        plan = planner.plan(extended_source(), extended_source(with_fec=True))
        assert plan.action_ids == ("AF+",)
        back = planner.plan(extended_source(with_fec=True), extended_source())
        assert back.action_ids == ("AF-",)

    def test_paper_map_unchanged_in_extended_space(self):
        planner = extended_planner()
        plan = planner.plan(extended_source(), extended_target())
        assert plan.total_cost == 50.0
        assert "AF+" not in plan.action_ids


class TestExtendedRuntime:
    def test_fec_insertion_mid_stream_is_safe(self):
        cluster = build_video_cluster(
            seed=2, extended=True, data_loss=BernoulliLoss(0.15)
        )
        scenario = VideoScenario(cluster=cluster)
        cluster.sim.run(until=100.0)
        outcome = cluster.adapt_to(extended_source(with_fec=True))
        cluster.sim.run(until=cluster.sim.now + 100.0)
        assert outcome.succeeded
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0

    def test_fec_improves_delivery_under_loss(self):
        def delivery_ratio(with_fec):
            initial = extended_source(with_fec=with_fec)
            cluster = build_video_cluster(
                seed=5, extended=True, initial=initial,
                data_loss=BernoulliLoss(0.15),
            )
            scenario = VideoScenario(cluster=cluster)
            cluster.sim.run(until=400.0)
            stats = scenario.stream_stats()
            return stats["handheld_received"] / stats["packets_sent"]

        without = delivery_ratio(False)
        with_fec = delivery_ratio(True)
        assert with_fec > without + 0.05  # material improvement

    def test_fec_removal_mid_stream_is_safe(self):
        cluster = build_video_cluster(
            seed=3, extended=True, initial=extended_source(with_fec=True)
        )
        scenario = VideoScenario(cluster=cluster)
        cluster.sim.run(until=60.0)
        outcome = cluster.adapt_to(extended_source(with_fec=False))
        cluster.sim.run(until=cluster.sim.now + 60.0)
        assert outcome.succeeded
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0

    def test_hardening_while_fec_active(self):
        """The paper's 64→128-bit MAP runs unchanged with FEC composed."""
        cluster = build_video_cluster(
            seed=6, extended=True, initial=extended_source(with_fec=True),
            data_loss=BernoulliLoss(0.1),
        )
        scenario = VideoScenario(cluster=cluster)
        cluster.sim.run(until=50.0)
        outcome = cluster.adapt_to(extended_target(with_fec=True))
        cluster.sim.run(until=cluster.sim.now + 100.0)
        assert outcome.succeeded
        assert outcome.steps_committed == 5
        scenario.safety_report().raise_if_unsafe()
        stats = scenario.stream_stats()
        assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
