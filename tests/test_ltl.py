"""Tests for the past-time LTL monitor and safe-state detection (§7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.expr.ast import And as EAnd
from repro.expr.ast import Atom, Not as ENot, OneOf, Or as EOr
from repro.ltl import (
    BalancedPair,
    Historically,
    Once,
    PAnd,
    PImplies,
    PNot,
    POr,
    PTLTLMonitor,
    Previously,
    Prop,
    SafeStateMonitor,
    Since,
    StateProp,
    compile_property,
    no_open_segments,
)

A, B = Prop("a"), Prop("b")


def run(formula, trace):
    return PTLTLMonitor(formula).run(trace)


class TestBooleans:
    def test_prop(self):
        assert run(A, [{"a"}, set(), {"a", "b"}]) == [True, False, True]

    def test_not_and_or_implies(self):
        assert run(PNot(A), [{"a"}, set()]) == [False, True]
        assert run(PAnd(A, B), [{"a", "b"}, {"a"}]) == [True, False]
        assert run(POr(A, B), [{"b"}, set()]) == [True, False]
        assert run(PImplies(A, B), [{"a"}, {"a", "b"}, set()]) == [False, True, True]


class TestTemporal:
    def test_previously(self):
        assert run(Previously(A), [{"a"}, set(), {"a"}, {"a"}]) == [
            False, True, False, True,
        ]

    def test_once_latches(self):
        assert run(Once(A), [set(), {"a"}, set(), set()]) == [
            False, True, True, True,
        ]

    def test_historically_breaks_once(self):
        assert run(Historically(A), [{"a"}, {"a"}, set(), {"a"}]) == [
            True, True, False, False,
        ]

    def test_since(self):
        # a S b: b seen, and a continuously since then
        trace = [set(), {"b"}, {"a"}, {"a"}, set(), {"a"}]
        assert run(Since(A, B), trace) == [False, True, True, True, False, False]

    def test_since_retriggers(self):
        trace = [{"b"}, set(), {"b"}]
        assert run(Since(A, B), trace) == [True, False, True]

    def test_request_acknowledged_pattern(self):
        # "every request has been followed by an ack": ¬(¬ack S req)
        req, ack = Prop("req"), Prop("ack")
        formula = PNot(Since(PNot(ack), req))
        trace = [set(), {"req"}, set(), {"ack"}, set(), {"req", "ack"}]
        # note the last step: a request arriving *with* its ack still
        # triggers strong-since, so the formula reads False there
        assert run(formula, trace) == [True, False, False, True, True, False]


class TestMonitorMechanics:
    def test_step_returns_current_value(self):
        monitor = PTLTLMonitor(Once(A))
        assert monitor.step(set()) is False
        assert monitor.step({"a"}) is True
        assert monitor.steps == 2
        assert monitor.value is True

    def test_shared_subformula_evaluated_consistently(self):
        shared = Once(A)
        formula = PAnd(shared, PNot(PNot(shared)))
        assert run(formula, [{"a"}, set()]) == [True, True]


_STATE_EXPRS = (
    OneOf((Atom("a"), Atom("b"))),
    EAnd((Atom("a"), ENot(Atom("c")))),
    EOr((Atom("b"), Atom("c"))),
)


@st.composite
def formulas(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return Prop(draw(st.sampled_from(["a", "b", "c"])))
        return StateProp(draw(st.sampled_from(_STATE_EXPRS)))
    kind = draw(
        st.sampled_from(
            ["not", "and", "or", "implies", "prev", "once", "hist", "since"]
        )
    )
    if kind == "not":
        return PNot(draw(formulas(depth=depth - 1)))
    if kind == "prev":
        return Previously(draw(formulas(depth=depth - 1)))
    if kind == "once":
        return Once(draw(formulas(depth=depth - 1)))
    if kind == "hist":
        return Historically(draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return {"and": PAnd, "or": POr, "implies": PImplies, "since": Since}[kind](
        left, right
    )


def reference_eval(formula, trace, index):
    """Non-incremental semantics, as the oracle."""
    if isinstance(formula, Prop):
        return formula.name in trace[index]
    if isinstance(formula, StateProp):
        return formula.expr.evaluate(trace[index])
    if isinstance(formula, PNot):
        return not reference_eval(formula.operand, trace, index)
    if isinstance(formula, PAnd):
        return reference_eval(formula.left, trace, index) and reference_eval(
            formula.right, trace, index
        )
    if isinstance(formula, POr):
        return reference_eval(formula.left, trace, index) or reference_eval(
            formula.right, trace, index
        )
    if isinstance(formula, PImplies):
        return (not reference_eval(formula.left, trace, index)) or reference_eval(
            formula.right, trace, index
        )
    if isinstance(formula, Previously):
        return index > 0 and reference_eval(formula.operand, trace, index - 1)
    if isinstance(formula, Once):
        return any(reference_eval(formula.operand, trace, j) for j in range(index + 1))
    if isinstance(formula, Historically):
        return all(reference_eval(formula.operand, trace, j) for j in range(index + 1))
    if isinstance(formula, Since):
        for j in range(index, -1, -1):
            if reference_eval(formula.right, trace, j):
                return all(
                    reference_eval(formula.left, trace, k)
                    for k in range(j + 1, index + 1)
                )
        return False
    raise TypeError(formula)


@given(
    formulas(),
    st.lists(st.sets(st.sampled_from(["a", "b", "c"])), min_size=1, max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_incremental_matches_reference_semantics(formula, trace):
    incremental = PTLTLMonitor(formula).run(trace)
    reference = [reference_eval(formula, trace, i) for i in range(len(trace))]
    assert incremental == reference


@given(
    formulas(),
    st.lists(st.sets(st.sampled_from(["a", "b", "c"])), min_size=1, max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_compiled_matches_reference_semantics(formula, trace):
    """The bit-slot program agrees with the O(n²) full-history oracle."""
    compiled = compile_property(formula)
    reference = [reference_eval(formula, trace, i) for i in range(len(trace))]
    assert compiled.monitor().run(trace) == reference
    # and the stateless step API over pre-encoded masks agrees too
    assert compiled.run([compiled.mask_of(events) for events in trace]) == reference


class TestSafeStateMonitor:
    def test_balanced_pairs_gate_safety(self):
        monitor = no_open_segments("begin", "end")
        assert monitor.safe  # vacuously, before any traffic
        assert monitor.observe("begin") is False
        assert monitor.open_obligations == 1
        assert monitor.observe("end") is True

    def test_nested_obligations(self):
        monitor = no_open_segments()
        monitor.observe("start")
        monitor.observe("start")
        monitor.observe("done")
        assert not monitor.safe
        monitor.observe("done")
        assert monitor.safe

    def test_unmatched_done_rejected(self):
        monitor = no_open_segments()
        with pytest.raises(ValueError):
            monitor.observe("done")

    def test_formula_and_pairs_combined(self):
        # safe iff no open decode AND we have never seen "panic"
        monitor = SafeStateMonitor(
            formula=PNot(Once(Prop("panic"))),
            pairs=[BalancedPair("start", "done")],
        )
        monitor.observe("start")
        monitor.observe("done")
        assert monitor.safe
        monitor.observe("panic")
        assert not monitor.safe
        monitor.observe()  # panic is latched by Once
        assert not monitor.safe

    def test_on_safe_callbacks(self):
        fired = []
        monitor = no_open_segments()
        monitor.on_safe(lambda: fired.append(True))
        monitor.observe("start")
        assert fired == []
        monitor.observe("done")
        assert fired == [True]
