"""Integration tests: protocol machines on the simulated cluster."""

import pytest

from repro.core.model import Configuration
from repro.errors import SimulationError, UnsafeConfigurationError
from repro.protocol.manager import ManagerState
from repro.safety import check_safe
from repro.sim import AdaptationCluster, QuiescentApp
from repro.trace import AdaptationApplied, BlockRecord, ConfigCommitted


def make_cluster(universe, invariants, actions, source, **kwargs):
    kwargs.setdefault(
        "apps", {p: QuiescentApp(2.0) for p in universe.processes()}
    )
    return AdaptationCluster(universe, invariants, actions, source, **kwargs)


class TestHappyPath:
    def test_adaptation_completes(self, universe, invariants, actions, source, target):
        cluster = make_cluster(universe, invariants, actions, source)
        outcome = cluster.adapt_to(target)
        assert outcome.succeeded
        assert outcome.configuration == target
        assert outcome.steps_committed == 5
        assert outcome.steps_rolled_back == 0

    def test_live_components_match_committed(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.adapt_to(target)
        assert cluster.live_configuration == target
        assert cluster.manager.committed == target

    def test_hosts_partition_initial_config(
        self, universe, invariants, actions, source
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        assert cluster.hosts["server"].components == {"E1"}
        assert cluster.hosts["handheld"].components == {"D1"}
        assert cluster.hosts["laptop"].components == {"D4"}

    def test_trace_commits_every_step(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.adapt_to(target)
        commits = cluster.trace.of_type(ConfigCommitted)
        assert len(commits) == 6  # initial + 5 steps
        assert commits[0].configuration == source.members
        assert commits[-1].configuration == target.members

    def test_trace_passes_safety_checker(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.adapt_to(target)
        check_safe(cluster.trace, invariants).raise_if_unsafe()

    def test_blocks_bracket_in_actions(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.adapt_to(target)
        blocked = {}
        for record in cluster.trace:
            if isinstance(record, BlockRecord):
                blocked[record.process] = record.blocked
            elif isinstance(record, AdaptationApplied):
                assert blocked.get(record.process) is True

    def test_trivial_adaptation(self, universe, invariants, actions, source):
        cluster = make_cluster(universe, invariants, actions, source)
        outcome = cluster.adapt_to(source)
        assert outcome.succeeded
        assert outcome.steps_committed == 0

    def test_sequential_adaptations(
        self, universe, invariants, actions, source, target
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        middle = universe.from_bits("1101001")  # {D2,D4,D5,E1}
        first = cluster.adapt_to(middle)
        assert first.succeeded
        second = cluster.adapt_to(target)
        assert second.succeeded
        assert cluster.live_configuration == target


class TestValidation:
    def test_unsafe_initial_config_rejected(self, universe, invariants, actions):
        with pytest.raises(UnsafeConfigurationError):
            AdaptationCluster(
                universe, invariants, actions, Configuration(["E1"])
            )

    def test_unsafe_target_rejected(self, universe, invariants, actions, source):
        cluster = make_cluster(universe, invariants, actions, source)
        with pytest.raises(UnsafeConfigurationError):
            cluster.adapt_to(Configuration(["D1", "D2", "D4", "E1"]))

    def test_unknown_app_process_rejected(self, universe, invariants, actions, source):
        with pytest.raises(SimulationError):
            AdaptationCluster(
                universe, invariants, actions, source,
                apps={"mars": QuiescentApp()},
            )

    def test_plan_must_start_at_committed(
        self, universe, invariants, actions, source, target, planner
    ):
        cluster = make_cluster(universe, invariants, actions, source)
        middle = universe.from_bits("1101001")
        plan = planner.plan(middle, target)
        with pytest.raises(SimulationError):
            cluster.manager.start_plan(plan)


class TestSpecificPlans:
    def test_single_composite_step_plan(
        self, universe, invariants, actions, source, target, planner
    ):
        # Run the expensive A14 triple as a one-step plan.
        plans = planner.plan_k(source, target, 20)
        a14 = next(p for p in plans if p.action_ids == ("A14",))
        cluster = make_cluster(universe, invariants, actions, source)
        outcome = cluster.run_plan(a14)
        assert outcome.succeeded
        assert outcome.steps_committed == 1
        assert cluster.live_configuration == target
        check_safe(cluster.trace, invariants).raise_if_unsafe()

    def test_composite_blocks_all_three_processes(
        self, universe, invariants, actions, source, target, planner
    ):
        plans = planner.plan_k(source, target, 20)
        a14 = next(p for p in plans if p.action_ids == ("A14",))
        cluster = make_cluster(universe, invariants, actions, source)
        cluster.run_plan(a14)
        blocked_processes = {
            r.process for r in cluster.trace.of_type(BlockRecord) if r.blocked
        }
        assert blocked_processes == {"server", "handheld", "laptop"}
