#!/usr/bin/env python
"""Live hot swap: the same protocol driving real threads, no simulator.

A pipeline thread continuously pushes items through a filter chain while
the adaptation manager (its own thread) replaces the chain's filter — the
MetaSocket recomposition of §2 performed on a *running* Python pipeline.
The pipeline pauses only while its host is held in the safe state; no item
is ever processed by a half-built chain.

Run:  python examples/live_filter_swap.py
"""

import time

from repro.components.filters import Filter
from repro.core import (
    ActionLibrary,
    AdaptiveAction,
    ComponentUniverse,
    InvariantSet,
)
from repro.runtime import LiveAdaptationSystem, PipelineApp
from repro.safety import check_safe


class Stamp(Filter):
    """Tags each item with the filter that processed it."""

    def process(self, item):
        return [f"{item}:{self.name}"]


def main() -> None:
    universe = ComponentUniverse.from_names(
        ["Gzip", "Zstd", "Lz4"], {name: "worker" for name in ("Gzip", "Zstd", "Lz4")}
    )
    invariants = InvariantSet.of("one_of(Gzip, Zstd, Lz4)")
    actions = ActionLibrary(
        [
            AdaptiveAction.replace("g2z", "Gzip", "Zstd", cost=5),
            AdaptiveAction.replace("z2l", "Zstd", "Lz4", cost=5),
            AdaptiveAction.replace("l2g", "Lz4", "Gzip", cost=5),
        ]
    )

    outputs = []
    app = PipelineApp(
        filter_factory=Stamp, sink=outputs.append, interval=0.002
    )
    system = LiveAdaptationSystem(
        universe,
        invariants,
        actions,
        universe.configuration("Gzip"),
        apps={"worker": app},
    )
    with system:
        time.sleep(0.05)
        print(f"streaming through Gzip... ({app.items_processed} items so far)")
        outcome = system.adapt_to(universe.configuration("Zstd"), timeout=15)
        print(f"swap 1: {outcome.status} in {outcome.duration:.1f} time units")
        time.sleep(0.05)
        outcome = system.adapt_to(universe.configuration("Lz4"), timeout=15)
        print(f"swap 2: {outcome.status} in {outcome.duration:.1f} time units")
        time.sleep(0.05)
        total = app.items_processed

    by_filter = {}
    for item in outputs:
        by_filter[item.rsplit(":", 1)[1]] = by_filter.get(item.rsplit(":", 1)[1], 0) + 1
    print(f"items processed: {total}, by filter: {by_filter}")
    assert set(by_filter) == {"Gzip", "Zstd", "Lz4"}

    report = check_safe(system.trace, invariants)
    print(f"safety: {report.summary()}")
    report.raise_if_unsafe()


if __name__ == "__main__":
    main()
