"""PlanningService: spec keying, warm sharing, thread safety, CLI batch."""

import io
import threading

import pytest

from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.cli import main
from repro.errors import NoSafePathError
from repro.manifest import video_manifest_text
from repro.serve import PlanningService, spec_digest


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def video_spec():
    return video_universe(), video_invariants(), video_actions()


class TestSpecDigest:
    def test_equal_specs_share_a_digest(self, video_spec):
        again = (video_universe(), video_invariants(), video_actions())
        assert spec_digest(*video_spec) == spec_digest(*again)

    def test_digest_is_sensitive_to_every_part(self, video_spec):
        universe, invariants, actions = video_spec
        base = spec_digest(universe, invariants, actions)
        fewer_invariants = type(invariants)(list(invariants)[:-1])
        assert spec_digest(universe, fewer_invariants, actions) != base
        fewer_actions = type(actions)(list(actions)[:-1])
        assert spec_digest(universe, invariants, fewer_actions) != base

    def test_component_order_is_semantic(self, video_spec):
        from repro.core.model import Component, ComponentUniverse

        universe, invariants, actions = video_spec
        reordered = ComponentUniverse(
            [
                Component(name, universe.component(name).process)
                for name in reversed(universe.order)
            ]
        )
        assert spec_digest(reordered, invariants, actions) != spec_digest(
            universe, invariants, actions
        )


class TestPlanningService:
    def test_equal_specs_share_one_planner(self, video_spec):
        service = PlanningService()
        first = service.planner_for(*video_spec)
        again = service.planner_for(
            video_universe(), video_invariants(), video_actions()
        )
        assert first is again
        assert service.stats().specs == 1

    def test_plan_matches_direct_planner(self, video_spec):
        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        plan = service.plan(universe, invariants, actions, source, target)
        assert plan.total_cost == 50.0
        # second call is a warm hit serving the identical object
        assert service.plan(universe, invariants, actions, source, target) is plan
        stats = service.stats()
        assert stats.warm_hits >= 1 and stats.cold_plans >= 1

    def test_unreachable_raises_warm_and_cold(self, video_spec):
        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        with pytest.raises(NoSafePathError):
            service.plan(universe, invariants, actions, target, source)
        # now cached as unreachable; the warm path must raise too
        with pytest.raises(NoSafePathError):
            service.plan(universe, invariants, actions, target, source)

    def test_plan_many_through_service(self, video_spec):
        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        plans = service.plan_many(
            universe, invariants, actions, [(source, target), (target, source)]
        )
        assert plans[0] is not None and plans[0].total_cost == 50.0
        assert plans[1] is None  # the video SAG is one-way

    def test_concurrent_callers_agree(self, video_spec):
        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        results, errors = [], []

        def hammer():
            try:
                for _ in range(20):
                    plan = service.plan(
                        universe, invariants, actions, source, target
                    )
                    results.append(plan.action_ids)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(set(results)) == 1  # every caller saw the same MAP
        assert service.stats().specs == 1


class TestCliBatch:
    @pytest.fixture
    def manifest_path(self, tmp_path):
        path = tmp_path / "video.manifest"
        path.write_text(video_manifest_text(), encoding="utf-8")
        return str(path)

    def test_plan_batch_file(self, manifest_path, tmp_path):
        batch = tmp_path / "requests.txt"
        batch.write_text(
            "# the paper's request, three spellings\n"
            "source -> target\n"
            "0100101 -> 1010010\n"
            "D1,D4,E1 1010010\n",
            encoding="utf-8",
        )
        code, output = run_cli("plan", manifest_path, "--batch", str(batch))
        assert code == 0
        assert output.count("[cost 50]") == 3
        assert "planned 3 request(s) (3 reachable)" in output
        assert "plans/sec" in output

    def test_plan_batch_reports_unreachable(self, manifest_path, tmp_path):
        batch = tmp_path / "requests.txt"
        batch.write_text("target -> source\n", encoding="utf-8")
        code, output = run_cli("plan", manifest_path, "--batch", str(batch))
        assert code == 1
        assert "NO SAFE PATH" in output

    def test_plan_batch_conflicts_with_endpoints(self, manifest_path, tmp_path):
        batch = tmp_path / "requests.txt"
        batch.write_text("source -> target\n", encoding="utf-8")
        code, _ = run_cli(
            "plan", manifest_path, "--batch", str(batch), "--from", "source"
        )
        assert code == 2

    def test_plan_still_requires_endpoints_without_batch(self, manifest_path):
        code, _ = run_cli("plan", manifest_path)
        assert code == 2

    def test_plan_batch_rejects_malformed_line(self, manifest_path, tmp_path):
        batch = tmp_path / "requests.txt"
        batch.write_text("source target extra\n", encoding="utf-8")
        code, _ = run_cli("plan", manifest_path, "--batch", str(batch))
        assert code == 2


class TestLazyRouting:
    """Oversized specs route to the lazy frontier planner automatically."""

    @pytest.fixture
    def big_system(self):
        from repro.bench.workloads import replicated_video_system

        return replicated_video_system(4)  # 28 components > LAZY_PLAN_COMPONENTS

    def test_oversized_spec_uses_lazy_plan(self, big_system):
        service = PlanningService()
        plan = service.plan(
            big_system.universe,
            big_system.invariants,
            big_system.actions,
            big_system.source,
            big_system.target,
        )
        assert plan.total_cost == 200.0
        stats = service.stats()
        assert stats.lazy_plans == 1
        # the eager space was never materialized for this spec
        planner = service.planner_for(
            big_system.universe, big_system.invariants, big_system.actions
        )
        assert planner._sag is None
        assert planner.space._cache is None

    def test_oversized_warm_hit_still_served_from_cache(self, big_system):
        service = PlanningService()
        args = (
            big_system.universe,
            big_system.invariants,
            big_system.actions,
            big_system.source,
            big_system.target,
        )
        first = service.plan(*args)
        assert service.plan(*args) is first
        stats = service.stats()
        assert stats.lazy_plans == 1 and stats.warm_hits == 1

    def test_oversized_plan_many_maps_unreachable_to_none(self, big_system):
        service = PlanningService()
        pairs = [
            (big_system.source, big_system.target),
            (big_system.target, big_system.source),  # one-way SAG: unreachable
        ]
        results = service.plan_many(
            big_system.universe, big_system.invariants, big_system.actions, pairs
        )
        assert results[0] is not None and results[0].total_cost == 200.0
        assert results[1] is None
        assert service.stats().lazy_plans == 2

    def test_threshold_is_configurable(self, video_spec):
        universe, invariants, actions = video_spec
        service = PlanningService(lazy_components=3)  # 7-component spec is "big"
        source, target = paper_source(universe), paper_target(universe)
        plan = service.plan(universe, invariants, actions, source, target)
        assert plan.total_cost == 50.0
        assert service.stats().lazy_plans == 1

    def test_lazy_routing_disabled_with_none(self, video_spec):
        universe, invariants, actions = video_spec
        service = PlanningService(lazy_components=None)
        source, target = paper_source(universe), paper_target(universe)
        service.plan(universe, invariants, actions, source, target)
        assert service.stats().lazy_plans == 0


class TestTemporalVerification:
    """Path-quantified checks through the service's amortizing caches."""

    def test_verify_matches_direct_call(self, video_spec):
        from repro.core.planner import AdaptationPlanner
        from repro.ltl import parse_property, verify_paths

        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        phi = parse_property("historically({one_of(E1, E2)})")
        via_service = service.verify_paths(
            universe, invariants, actions, source, target, phi
        )
        direct = verify_paths(
            AdaptationPlanner(universe, invariants, actions),
            source, target, phi, lazy=False,
        )
        assert via_service.holds is direct.holds is True
        assert via_service.paths_checked == direct.paths_checked
        assert via_service.mode == "eager"

    def test_structurally_equal_formulas_share_one_compilation(self, video_spec):
        from repro.ltl import parse_property

        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        for _ in range(3):  # separately parsed objects, same structure
            service.verify_paths(
                universe, invariants, actions, source, target,
                parse_property("historically(!E2)"),
            )
        stats = service.stats()
        assert stats.verify_hits == 2  # first call compiles, the rest are warm

    def test_oversized_spec_verifies_lazily(self):
        from repro.bench.workloads import replicated_video_system
        from repro.ltl import parse_property

        big = replicated_video_system(4)
        service = PlanningService()
        verdict = service.verify_paths(
            big.universe, big.invariants, big.actions,
            big.source, big.target,
            parse_property("historically({one_of(E1@g0, E2@g0)})"),
            k=2, max_expansions=60_000,
        )
        assert verdict.holds is True
        assert verdict.mode == "lazy"
        planner = service.planner_for(big.universe, big.invariants, big.actions)
        assert planner._sag is None and planner.space._cache is None

    def test_check_plans_batch(self, video_spec):
        from repro.ltl import parse_property

        universe, invariants, actions = video_spec
        service = PlanningService()
        source, target = paper_source(universe), paper_target(universe)
        results = service.check_plans(
            universe, invariants, actions,
            [(source, target), (target, source)],
            parse_property("historically(!E2)"),
        )
        plan, violation = results[0]
        assert plan.total_cost == 50.0
        # the reported index is the first E2-bearing committed configuration
        expected = next(
            i for i, c in enumerate(plan.configurations) if "E2" in c.members
        )
        assert violation == expected
        assert results[1] is None  # unreachable pair
