"""Command-line interface: plan and simulate adaptations from manifests.

Usage (``python -m repro <command> ...``):

* ``check MANIFEST`` — validate a manifest (the analyzer's SA1xx
  well-formedness gate); print the model summary.
* ``lint MANIFEST...`` — full static analysis (SA1xx–SA4xx) with
  ``--format text|json|sarif`` and a ``--fail-on`` severity gate.
* ``safe-configs MANIFEST`` — enumerate the safe configuration set (Table 1).
* ``plan MANIFEST --from SRC --to DST [--k N] [--lazy]
  [--method auto|dijkstra|lazy|collaborative]`` — compute the Minimum
  Adaptation Path (Figure 4's result); ``auto`` picks the lazy frontier
  search above the enumeration cap.
* ``sag MANIFEST [--highlight-map --from SRC --to DST]`` — emit Graphviz
  DOT of the Safe Adaptation Graph (Figure 4 itself).
* ``simulate MANIFEST --from SRC --to DST [--backend sim|live|aio]
  [--seed N --loss P --quiesce MS --save-trace FILE]`` — run the
  realization phase on the chosen execution backend (discrete-event
  simulator, threaded live runtime, or asyncio) and check the execution
  against the paper's safety definition.
* ``verify-paths MANIFEST --from SRC --to DST --property NAME
  [--quantifier all|exists] [--k N]`` — path-quantified temporal
  verification: decide whether the named ``[properties]`` formula holds
  at every committed configuration along every (or some) k-best safe
  adaptation path; exits 0 when proven, 1 on a violation (with the
  minimized counterexample), 3 when inconclusive under the lazy budget.
* ``trace check FILE --manifest MANIFEST [--ltl NAME]`` — run the safety
  checker offline on a persisted ``--save-trace`` JSONL file; with
  ``--ltl``, also check the named ``[properties]`` formula against the
  trace's committed configurations (constant memory).
* ``example-manifest`` — print the §5 video system as a manifest.

``SRC``/``DST`` may be a configuration name from the manifest's
``[configurations]`` section, a bit vector, or a comma-separated member
list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import format_table
from repro.core.planner import LAZY_PLAN_COMPONENTS
from repro.errors import ReproError
from repro.manifest import SystemManifest, load_path, video_manifest_text


def _add_manifest(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("manifest", help="path to a system manifest file")


def _add_endpoints(parser: argparse.ArgumentParser, required: bool = True) -> None:
    parser.add_argument("--from", dest="source", required=required,
                        help="source configuration (name, bits, or members)")
    parser.add_argument("--to", dest="target", required=required,
                        help="target configuration (name, bits, or members)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Safe dynamic component-based software adaptation "
                    "(Zhang et al., DSN 2004)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="validate a manifest")
    _add_manifest(check)

    lint = commands.add_parser(
        "lint", help="static analysis: diagnose adaptation-spec defects"
    )
    lint.add_argument(
        "manifests", nargs="+", metavar="manifest",
        help="manifest file(s) to analyze",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "note"), default="error",
        help="lowest severity that makes the exit code non-zero "
             "(default: error)",
    )
    lint.add_argument(
        "--verbose", action="store_true",
        help="also report analysis stages that were skipped and why",
    )
    lint.add_argument(
        "--max-enum-components", type=int, default=None, metavar="N",
        help="override the SA3xx safe-space enumeration cap "
             "(skips emit an SA307 note)",
    )
    lint.add_argument(
        "--enum-workers", type=int, default=None, metavar="N",
        help="enumerate the safe space on N worker processes",
    )

    safe = commands.add_parser("safe-configs", help="enumerate safe configurations")
    _add_manifest(safe)

    plan = commands.add_parser("plan", help="compute the Minimum Adaptation Path")
    _add_manifest(plan)
    _add_endpoints(plan, required=False)
    plan.add_argument("--k", type=int, default=1,
                      help="also list the k best alternate plans")
    plan.add_argument(
        "--method", choices=("auto", "dijkstra", "lazy", "collaborative"),
        default="auto",
        help="planning algorithm (default: auto — eager Dijkstra within "
             "the enumeration cap, lazy frontier search above it)",
    )
    plan.add_argument(
        "--lazy", action="store_true",
        help="force the lazy frontier search (never materializes the "
             "safe space; shorthand for --method lazy)",
    )
    plan.add_argument(
        "--batch", metavar="FILE",
        help="plan many requests from FILE (one 'SRC -> DST' per line; "
             "'-' reads stdin) through a shared PlanningService",
    )
    plan.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="enumerate the safe space on N worker processes",
    )

    sag = commands.add_parser("sag", help="emit the SAG as Graphviz DOT")
    _add_manifest(sag)
    sag.add_argument("--highlight-map", action="store_true",
                     help="highlight the MAP (requires --from/--to)")
    sag.add_argument("--from", dest="source", help="source configuration")
    sag.add_argument("--to", dest="target", help="target configuration")

    simulate = commands.add_parser(
        "simulate", help="run the adaptation on an execution backend"
    )
    _add_manifest(simulate)
    _add_endpoints(simulate)
    simulate.add_argument(
        "--backend", choices=("sim", "live", "aio"), default="sim",
        help="execution substrate: discrete-event simulator (default), "
             "threaded live runtime, or asyncio",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--loss", type=float, default=0.0,
                          help="control-message loss probability (sim backend only)")
    simulate.add_argument("--quiesce", type=float, default=2.0,
                          help="per-process quiesce delay (time units)")
    simulate.add_argument("--time-scale", type=float, default=0.001,
                          help="wall seconds per time unit (live/aio backends)")
    simulate.add_argument("--timeline", action="store_true",
                          help="print the per-process adaptation timeline")
    simulate.add_argument("--save-trace", metavar="FILE",
                          help="persist the execution trace as JSON lines")
    simulate.add_argument("--enforce", action="store_true",
                          help="online enforcement: abort the run at the first "
                               "safety violation (streaming checker tripwire)")
    simulate.add_argument("--metrics", action="store_true",
                          help="print rolling execution counters collected "
                               "over the observation bus")
    simulate.add_argument("--tail", action="store_true",
                          help="print the event log live as records are "
                               "emitted (streaming sink)")

    verify = commands.add_parser(
        "verify-paths",
        help="path-quantified temporal verification over the SAG",
    )
    _add_manifest(verify)
    _add_endpoints(verify)
    verify.add_argument(
        "--property", dest="prop", required=True, metavar="NAME",
        help="name of a [properties] entry from the manifest",
    )
    verify.add_argument(
        "--quantifier", choices=("all", "exists"), default="all",
        help="'all': φ must hold along every k-best path; "
             "'exists': some k-best path suffices (default: all)",
    )
    verify.add_argument(
        "--k", type=int, default=None, metavar="N",
        help="width of the quantified path set (default: 8)",
    )
    verify.add_argument(
        "--lazy", action="store_true",
        help="force the budget-bounded frontier enumeration (default: "
             "automatic above the enumeration cap)",
    )
    verify.add_argument(
        "--max-expansions", type=int, default=None, metavar="N",
        help="node budget for the lazy enumeration (exhaustion yields "
             "an inconclusive verdict, exit code 3)",
    )

    trace = commands.add_parser("trace", help="inspect persisted execution traces")
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_check = trace_commands.add_parser(
        "check", help="run the safety checker offline on a trace JSONL file"
    )
    trace_check.add_argument("tracefile", help="path to a trace .jsonl file")
    trace_check.add_argument(
        "--manifest", required=True,
        help="manifest supplying the dependency invariants to check against",
    )
    trace_check.add_argument(
        "--stream", action="store_true",
        help="stream the file through the incremental checker line by line "
             "(constant memory; the record list is never materialized)",
    )
    trace_check.add_argument(
        "--metrics", action="store_true",
        help="also print rolling execution counters for the trace",
    )
    trace_check.add_argument(
        "--ltl", metavar="NAME", default=None,
        help="also check the named [properties] formula at each committed "
             "configuration of the trace (works with --stream)",
    )

    commands.add_parser(
        "example-manifest", help="print the paper's video system as a manifest"
    )
    return parser


def cmd_lint(args, out) -> int:
    from pathlib import Path

    from repro.lint import (
        LintReport,
        Severity,
        lint_text,
        render_json,
        render_sarif,
        render_text,
    )

    merged = LintReport()
    for name in args.manifests:
        text = Path(name).read_text(encoding="utf-8")
        merged.extend(
            lint_text(
                text,
                path=name,
                max_enum_components=args.max_enum_components,
                workers=args.enum_workers,
            )
        )
    merged.sort()
    if args.format == "json":
        print(render_json(merged), file=out)
    elif args.format == "sarif":
        print(render_sarif(merged), file=out)
    else:
        print(render_text(merged, verbose=args.verbose), file=out)
    return 1 if merged.fails(Severity.from_label(args.fail_on)) else 0


def cmd_check(args, out) -> int:
    # `check` is the well-formedness (SA1xx) gate of the analyzer: every
    # defect is reported at once, then the usual model summary prints.
    from pathlib import Path

    from repro.lint import lint_text

    text = Path(args.manifest).read_text(encoding="utf-8")
    report = lint_text(text, path=args.manifest)
    shape_errors = [
        d for d in report.errors if d.code.startswith("SA1")
    ]
    if shape_errors:
        listing = "\n".join(d.render() for d in shape_errors)
        raise ReproError(f"manifest is ill-formed:\n{listing}")
    manifest = load_path(args.manifest)
    print(f"components: {len(manifest.universe)} "
          f"on {len(manifest.universe.processes())} process(es)", file=out)
    print(f"invariants: {len(manifest.invariants)}", file=out)
    print(f"actions: {len(manifest.actions)}", file=out)
    planner = manifest.planner()
    print(f"safe configurations: {planner.space.count()}", file=out)
    for name, config in manifest.configurations.items():
        verdict = "safe" if planner.space.is_safe(config) else "UNSAFE"
        print(f"configuration {name} = {config.label()}: {verdict}", file=out)
    return 0


def cmd_safe_configs(args, out) -> int:
    manifest = load_path(args.manifest)
    planner = manifest.planner()
    print(
        format_table(
            ["bit vector", "configuration"], planner.space.to_table()
        ),
        file=out,
    )
    return 0


def _parse_batch_lines(lines, manifest):
    """Parse batch request lines into (source, target) configuration pairs.

    Accepted per line: ``SRC -> DST`` or two whitespace-separated specs;
    blank lines and ``#`` comments are skipped.
    """
    pairs = []
    for lineno, raw in enumerate(lines, 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "->" in line:
            left, _, right = line.partition("->")
            left, right = left.strip(), right.strip()
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ReproError(
                    f"batch line {lineno}: expected 'SRC -> DST', got {raw!r}"
                )
            left, right = parts
        pairs.append(
            (
                manifest.resolve_configuration(left),
                manifest.resolve_configuration(right),
            )
        )
    return pairs


def cmd_plan_batch(args, out) -> int:
    import time

    from repro.serve import PlanningService

    manifest = load_path(args.manifest)
    if args.batch == "-":
        lines = sys.stdin.read().splitlines()
    else:
        from pathlib import Path

        lines = Path(args.batch).read_text(encoding="utf-8").splitlines()
    pairs = _parse_batch_lines(lines, manifest)
    if not pairs:
        raise ReproError(f"batch file {args.batch} contains no requests")
    service = PlanningService(workers=args.workers)
    started = time.perf_counter()
    plans = service.plan_many(
        manifest.universe, manifest.invariants, manifest.actions, pairs
    )
    elapsed = time.perf_counter() - started
    reachable = 0
    for (source, target), plan in zip(pairs, plans):
        if plan is None:
            print(
                f"{source.label()} -> {target.label()}: NO SAFE PATH", file=out
            )
        else:
            reachable += 1
            print(
                f"{source.label()} -> {target.label()}: "
                f"{' -> '.join(plan.action_ids) or '(empty)'} "
                f"[cost {plan.total_cost:g}]",
                file=out,
            )
    rate = len(pairs) / elapsed if elapsed > 0 else float("inf")
    print(
        f"planned {len(pairs)} request(s) ({reachable} reachable) "
        f"in {elapsed * 1000:.1f} ms ({rate:,.0f} plans/sec)",
        file=out,
    )
    return 0 if reachable == len(pairs) else 1


def cmd_plan(args, out) -> int:
    if args.batch:
        if args.source or args.target:
            raise ReproError("--batch and --from/--to are mutually exclusive")
        return cmd_plan_batch(args, out)
    if not (args.source and args.target):
        raise ReproError("plan requires --from and --to (or --batch FILE)")
    manifest = load_path(args.manifest)
    planner = manifest.planner()
    source = manifest.resolve_configuration(args.source)
    target = manifest.resolve_configuration(args.target)
    method = "lazy" if args.lazy else args.method
    oversized = len(manifest.universe) > LAZY_PLAN_COMPONENTS
    if method == "auto":
        # above the cap the eager 2^n pipeline is off the table
        method = "lazy" if oversized else "dijkstra"
    if args.k > 1 and oversized:
        raise ReproError(
            f"--k alternates need the eager SAG, which is capped at "
            f"{LAZY_PLAN_COMPONENTS} components "
            f"(manifest has {len(manifest.universe)})"
        )
    if method == "lazy":
        plan = planner.lazy_plan(source, target)
    elif method == "collaborative":
        plan = planner.plan_collaborative(source, target)
    else:
        plan = planner.plan(source, target)
    print(plan.describe(), file=out)
    if args.k > 1:
        print(file=out)
        print(f"{args.k} best plans:", file=out)
        for index, alternate in enumerate(planner.plan_k(source, target, args.k), 1):
            print(
                f"  {index}. {' -> '.join(alternate.action_ids) or '(empty)'} "
                f"[cost {alternate.total_cost:g}]",
                file=out,
            )
    return 0


def cmd_sag(args, out) -> int:
    manifest = load_path(args.manifest)
    planner = manifest.planner()
    highlight = None
    if args.highlight_map:
        if not (args.source and args.target):
            raise ReproError("--highlight-map requires --from and --to")
        plan = planner.plan(
            manifest.resolve_configuration(args.source),
            manifest.resolve_configuration(args.target),
        )
        highlight = [
            (step.source, step.action.action_id, step.target)
            for step in plan.steps
        ]
    print(
        planner.sag.to_dot(universe=manifest.universe, highlight_path=highlight),
        file=out,
    )
    return 0


def _run_backend(args, manifest, source, target, bus=None):
    """Execute source→target on the selected backend; returns (outcome, trace)."""
    from repro.exec.app import QuiescentAdapter

    if args.backend != "sim" and args.loss:
        raise ReproError("--loss requires the sim backend (seeded loss models)")
    quiesce_apps = {
        process: QuiescentAdapter(args.quiesce)
        for process in manifest.universe.processes()
    }
    if args.backend == "sim":
        from repro.sim import AdaptationCluster, BernoulliLoss

        cluster = AdaptationCluster(
            manifest.universe,
            manifest.invariants,
            manifest.actions,
            source,
            seed=args.seed,
            apps=quiesce_apps,
            default_loss=BernoulliLoss(args.loss) if args.loss else None,
            bus=bus,
        )
        return cluster.adapt_to(target), cluster.trace
    if args.backend == "live":
        from repro.runtime import LiveAdaptationSystem

        system = LiveAdaptationSystem(
            manifest.universe,
            manifest.invariants,
            manifest.actions,
            source,
            apps=quiesce_apps,
            time_scale=args.time_scale,
            bus=bus,
        )
        with system:
            outcome = system.adapt_to(target)
        return outcome, system.trace
    from repro.exec.aio import run_aio_adaptation

    outcome, system = run_aio_adaptation(
        manifest.universe,
        manifest.invariants,
        manifest.actions,
        source,
        target,
        apps=quiesce_apps,
        time_scale=args.time_scale,
        bus=bus,
    )
    return outcome, system.trace


def cmd_simulate(args, out) -> int:
    from repro.errors import SafetyViolationError
    from repro.obs import MetricsObserver, ObservationBus
    from repro.safety import SafetyChecker

    manifest = load_path(args.manifest)
    source = manifest.resolve_configuration(args.source)
    target = manifest.resolve_configuration(args.target)

    # All observation rides the bus: streaming safety (optionally
    # enforcing), rolling metrics, and the live event tail.
    checker = SafetyChecker(manifest.invariants, universe=manifest.universe)
    stream = checker.streaming(enforce=args.enforce)
    bus = ObservationBus(stream)
    metrics = None
    if args.metrics:
        metrics = bus.subscribe(MetricsObserver())
    if args.tail:
        from repro.render import EventStreamSink

        bus.subscribe(EventStreamSink(stream=out))
    print(f"backend: {args.backend}", file=out)
    try:
        outcome, trace = _run_backend(args, manifest, source, target, bus=bus)
    except SafetyViolationError as exc:
        violation = exc.violation
        print("outcome: ABORTED by online enforcement", file=out)
        if violation is not None:
            print(f"violation: [{violation.kind}] t={violation.time:g}: "
                  f"{violation.detail}", file=out)
        else:  # pragma: no cover - violations always carry structure here
            print(f"violation: {exc}", file=out)
        return 1
    print(f"outcome: {outcome.status} at {outcome.configuration.label()}", file=out)
    print(f"duration: {outcome.duration:g} time units, "
          f"steps committed: {outcome.steps_committed}, "
          f"rolled back: {outcome.steps_rolled_back}", file=out)
    report = stream.finish()
    print(f"safety: {report.summary()}", file=out)
    if args.save_trace:
        from pathlib import Path

        Path(args.save_trace).write_text(trace.to_jsonl() + "\n", encoding="utf-8")
        print(f"trace: {len(trace)} records -> {args.save_trace}", file=out)
    if metrics is not None:
        print(file=out)
        print(metrics.finish().summary(), file=out)
    if args.timeline:
        from repro.render import render_events, render_timeline

        print(file=out)
        print(render_timeline(trace), file=out)
        print(file=out)
        print(render_events(trace), file=out)
    return 0 if (report.ok and outcome.succeeded) else 1


class _PropertyTraceCheck:
    """Constant-memory ptLTL check over a trace's committed configurations.

    Feeds every :class:`~repro.trace.ConfigCommitted` record through the
    compiled property — state is one int, so ``--stream`` stays
    constant-memory — and remembers the first violating commit.
    """

    def __init__(self, name: str, compiled) -> None:
        self.name = name
        self.compiled = compiled
        self.state = compiled.initial_state
        self.commits = 0
        self.first_violation = None  # (commit index, record)

    def feed(self, record) -> None:
        from repro.trace import ConfigCommitted

        if not isinstance(record, ConfigCommitted):
            return
        value, self.state = self.compiled.step(
            self.compiled.mask_of(record.configuration), self.state
        )
        self.commits += 1
        if not value and self.first_violation is None:
            self.first_violation = (self.commits, record)

    def render(self, out) -> bool:
        from repro.ltl import property_to_text

        print(f"property {self.name}: {property_to_text(self.compiled.formula)}",
              file=out)
        if self.first_violation is None:
            print(f"property verdict: HOLDS over {self.commits} committed "
                  "configuration(s)", file=out)
            return True
        index, record = self.first_violation
        members = ", ".join(sorted(record.configuration)) or "(empty)"
        print(f"property verdict: VIOLATED at commit {index} of "
              f"{self.commits} (t={record.time:g}, after "
              f"{record.action_id or record.step_id}): {{{members}}}", file=out)
        return False


def cmd_trace(args, out) -> int:
    from pathlib import Path

    from repro.obs import MetricsObserver
    from repro.safety import SafetyChecker
    from repro.trace import Trace, iter_jsonl

    # only one sub-command today: `trace check`
    manifest = load_path(args.manifest)
    checker = SafetyChecker(manifest.invariants, universe=manifest.universe)
    stream = checker.streaming()
    metrics = MetricsObserver() if args.metrics else None
    ltl = None
    if args.ltl:
        from repro.ltl import CompiledProperty

        ltl = _PropertyTraceCheck(
            args.ltl,
            CompiledProperty(
                manifest.property_named(args.ltl), manifest.universe.atom_bits
            ),
        )
    try:
        if args.stream:
            # Constant memory: records flow file → decoder → checker one
            # at a time; the trace is never materialized.
            with open(args.tracefile, encoding="utf-8") as handle:
                for record in iter_jsonl(handle):
                    stream.feed(record)
                    if metrics is not None:
                        metrics.feed(record)
                    if ltl is not None:
                        ltl.feed(record)
            records = stream.records_seen
            commits = stream.configurations_checked
        else:
            text = Path(args.tracefile).read_text(encoding="utf-8")
            restored = Trace.from_jsonl(text)
            for record in restored:
                stream.feed(record)
                if metrics is not None:
                    metrics.feed(record)
                if ltl is not None:
                    ltl.feed(record)
            records = len(restored)
            commits = len(restored.committed_configurations())
    except ValueError as exc:
        raise ReproError(f"malformed trace file {args.tracefile}: {exc}") from exc
    report = stream.finish()
    print(f"records: {records}", file=out)
    print(f"committed configurations: {commits}", file=out)
    print(f"safety: {report.summary()}", file=out)
    for violation in report.violations:
        print(f"  [{violation.kind}] t={violation.time:g}: {violation.detail}",
              file=out)
    ltl_ok = True
    if ltl is not None:
        ltl_ok = ltl.render(out)
    if metrics is not None:
        print(file=out)
        print(metrics.finish().summary(), file=out)
    return 0 if (report.ok and ltl_ok) else 1


def cmd_verify_paths(args, out) -> int:
    from repro.ltl import property_to_text, verify_paths

    if args.k is not None and args.k <= 0:
        raise ReproError(f"--k must be positive, got {args.k}")
    if args.max_expansions is not None and args.max_expansions <= 0:
        raise ReproError(
            f"--max-expansions must be positive, got {args.max_expansions}"
        )
    manifest = load_path(args.manifest)
    phi = manifest.property_named(args.prop)
    planner = manifest.planner()
    source = manifest.resolve_configuration(args.source)
    target = manifest.resolve_configuration(args.target)
    verdict = verify_paths(
        planner,
        source,
        target,
        phi,
        quantifier=args.quantifier,
        k=args.k,
        lazy=True if args.lazy else None,
        max_expansions=args.max_expansions,
    )
    print(f"property {args.prop}: {property_to_text(phi)}", file=out)
    print(
        f"quantifier: {verdict.quantifier} over the {verdict.k} best "
        f"path(s), {verdict.mode} enumeration",
        file=out,
    )
    suffix = "" if verdict.complete else " (enumeration incomplete)"
    print(f"paths checked: {verdict.paths_checked}{suffix}", file=out)
    if verdict.holds is None:
        print(f"verdict: INCONCLUSIVE — {verdict.reason}", file=out)
        return 3
    if verdict.holds:
        print(f"verdict: HOLDS — {verdict.reason}", file=out)
        if verdict.witness is not None:
            print(file=out)
            print("witness path:", file=out)
            print(verdict.witness.describe(), file=out)
        return 0
    print(f"verdict: VIOLATED — {verdict.reason}", file=out)
    if verdict.counterexample is not None:
        print(file=out)
        print("counterexample (minimized to the first violating prefix):",
              file=out)
        print(verdict.counterexample.describe(), file=out)
    return 1


def cmd_example_manifest(args, out) -> int:
    print(video_manifest_text(), file=out)
    return 0


_COMMANDS = {
    "check": cmd_check,
    "lint": cmd_lint,
    "safe-configs": cmd_safe_configs,
    "plan": cmd_plan,
    "sag": cmd_sag,
    "simulate": cmd_simulate,
    "trace": cmd_trace,
    "verify-paths": cmd_verify_paths,
    "example-manifest": cmd_example_manifest,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout consumer (e.g. `| head`) went away; exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
