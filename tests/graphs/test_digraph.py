"""Unit tests for the directed multigraph."""

import pytest

from repro.graphs import Digraph, Edge


class TestConstruction:
    def test_empty(self):
        g = Digraph()
        assert g.node_count == 0
        assert g.edge_count == 0

    def test_add_node_idempotent(self):
        g = Digraph()
        g.add_node("a")
        g.add_node("a")
        assert g.node_count == 1

    def test_add_edge_adds_endpoints(self):
        g = Digraph()
        g.add_edge("a", "b", "e1", 1.0)
        assert "a" in g and "b" in g
        assert g.edge_count == 1

    def test_negative_weight_rejected(self):
        g = Digraph()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", "e1", -1.0)

    def test_parallel_edges_allowed(self):
        g = Digraph()
        g.add_edge("a", "b", "e1", 1.0)
        g.add_edge("a", "b", "e2", 2.0)
        assert g.edge_count == 2
        assert set(g.edge_labels("a", "b")) == {"e1", "e2"}


class TestQueries:
    @pytest.fixture
    def graph(self):
        g = Digraph()
        g.add_edge("a", "b", "ab", 1.0)
        g.add_edge("b", "c", "bc", 2.0)
        g.add_edge("a", "c", "ac", 5.0)
        return g

    def test_out_edges(self, graph):
        labels = [e.label for e in graph.out_edges("a")]
        assert labels == ["ab", "ac"]

    def test_out_edges_unknown_node_empty(self, graph):
        assert graph.out_edges("zzz") == ()

    def test_successors_deduplicated(self):
        g = Digraph()
        g.add_edge("a", "b", "e1", 1.0)
        g.add_edge("a", "b", "e2", 1.0)
        assert list(g.successors("a")) == ["b"]

    def test_has_edge(self, graph):
        assert graph.has_edge("a", "b")
        assert not graph.has_edge("b", "a")  # directed

    def test_edges_iterates_all(self, graph):
        assert len(list(graph.edges())) == 3

    def test_hashable_nodes(self):
        g = Digraph()
        g.add_edge(frozenset({"x"}), frozenset({"y"}), "swap", 1.0)
        assert frozenset({"x"}) in g


class TestSubgraphWithout:
    def test_removes_edges_by_source_and_label(self):
        g = Digraph()
        g.add_edge("a", "b", "e1", 1.0)
        g.add_edge("a", "b", "e2", 1.0)
        pruned = g.subgraph_without(removed_edges=[("a", "e1")])
        assert pruned.edge_labels("a", "b") == ("e2",)

    def test_removes_nodes_and_incident_edges(self):
        g = Digraph()
        g.add_edge("a", "b", "ab", 1.0)
        g.add_edge("b", "c", "bc", 1.0)
        pruned = g.subgraph_without(removed_nodes=["b"])
        assert "b" not in pruned
        assert pruned.edge_count == 0
        assert "a" in pruned and "c" in pruned

    def test_original_untouched(self):
        g = Digraph()
        g.add_edge("a", "b", "ab", 1.0)
        g.subgraph_without(removed_nodes=["a"])
        assert g.edge_count == 1
