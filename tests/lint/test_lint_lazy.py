"""Lazy analysis above the enumeration cap (SA307 + lazy SA205/SA306).

Before this suite's subject existed, every named-configuration check was
silently dropped above ``MAX_ENUM_COMPONENTS``.  Now SA303/SA304 (which
never needed the safe space) always run, and SA205/SA306 fall back to
point queries and budget-bounded frontier search with tri-state verdicts
— an inconclusive search is recorded in ``report.skipped``, never
misreported as a diagnostic.
"""

import pytest

import repro.lint.checks as checks_mod
from repro.lint import lint_text


def fleet_manifest(
    n_groups: int = 9,
    rollbacks: bool = True,
    extra_configs: str = "",
    extra_actions: str = "",
) -> str:
    """``3 * n_groups`` components, one ``one_of`` invariant per group."""
    lines = ["[components]"]
    for g in range(n_groups):
        for v in (1, 2, 3):
            lines.append(f"S{g}v{v} @ node{g}")
    lines += ["", "[invariants]"]
    for g in range(n_groups):
        lines.append(f"group{g} : one_of(S{g}v1, S{g}v2, S{g}v3)")
    lines += ["", "[actions]"]
    for g in range(n_groups):
        lines.append(f"U{g}a : S{g}v1 -> S{g}v2 @ 10 ; upgrade")
        lines.append(f"U{g}b : S{g}v2 -> S{g}v3 @ 10 ; upgrade")
        if rollbacks:
            lines.append(f"R{g}a : S{g}v2 -> S{g}v1 @ 10 ; roll back")
            lines.append(f"R{g}b : S{g}v3 -> S{g}v2 @ 10 ; roll back")
    if extra_actions:
        lines.append(extra_actions)
    lines += ["", "[configurations]"]
    lines.append("baseline = " + ",".join(f"S{g}v1" for g in range(n_groups)))
    lines.append(
        "canary = "
        + ",".join(f"S{g}v2" if g == 0 else f"S{g}v1" for g in range(n_groups))
    )
    if extra_configs:
        lines.append(extra_configs)
    lines.append("")
    return "\n".join(lines)


def test_above_cap_emits_single_sa307_note():
    report = lint_text(fleet_manifest())
    # The SA3xx space checks collapse to the single SA307 note.  The
    # cap-proof interference checks still run: each group's chained
    # upgrades U*a/U*b (and rollbacks R*a/R*b) race on the shared middle
    # version (SA604), and the stateful SA601/SA603 sweep notes its
    # fallback to named-configuration sources (SA605).
    assert report.codes() == ("SA307", "SA604", "SA605")
    [note] = [d for d in report if d.code == "SA307"]
    assert "27 components" in note.message
    assert "lazy frontier search" in note.message
    assert any("SA3xx skipped" in line for line in report.skipped)
    [fallback] = [d for d in report if d.code == "SA605"]
    assert "named safe configuration" in fallback.message
    races = [d for d in report if d.code == "SA604"]
    assert len(races) == 18  # (U*a, U*b) and (R*a, R*b) per group


def test_library_checks_still_run_above_cap():
    # a zero-cost action (SA303) and a replace with no inverse (SA304)
    report = lint_text(
        fleet_manifest(
            rollbacks=False,
            extra_actions="Z0 : S0v1 -> S0v3 @ 0 ; free jump",
        )
    )
    assert "SA303" in report.codes()
    assert "SA304" in report.codes()


def test_unsafe_named_configuration_caught_lazily():
    # two variants of service 0 at once violates one_of
    bad = "broken = " + ",".join(
        ["S0v1", "S0v2"] + [f"S{g}v1" for g in range(1, 9)]
    )
    report = lint_text(fleet_manifest(extra_configs=bad))
    [diag] = [d for d in report if d.code == "SA205"]
    assert "'broken'" in diag.message


def test_one_way_reachability_caught_lazily():
    # without rollbacks the upgrade lattice is one-way: canary can never
    # return to baseline
    report = lint_text(fleet_manifest(rollbacks=False))
    one_way = [d for d in report if d.code == "SA306"]
    assert len(one_way) == 1
    assert "one-way" in one_way[0].message
    assert "'baseline'" in one_way[0].message


def test_two_way_unreachability_caught_lazily():
    # without rollbacks, upgrades form a partial order: two configurations
    # that each upgraded a *different* service are incomparable — neither
    # can reach the other
    sibling = "sibling = " + ",".join(
        "S1v2" if g == 1 else f"S{g}v1" for g in range(9)
    )
    report = lint_text(fleet_manifest(rollbacks=False, extra_configs=sibling))
    messages = [d.message for d in report if d.code == "SA306"]
    assert any(
        "in either direction" in m and "'canary'" in m and "'sibling'" in m
        for m in messages
    )


def test_budget_exhaustion_is_inconclusive_not_wrong(monkeypatch):
    monkeypatch.setattr(checks_mod, "LAZY_REACH_EXPANSIONS", 1)
    # a goal 18 upgrade steps away — far beyond a 1-node search budget
    far = "allv3 = " + ",".join(f"S{g}v3" for g in range(9))
    report = lint_text(fleet_manifest(extra_configs=far))
    assert "SA306" not in report.codes()  # no false unreachability claim
    assert any("SA306 inconclusive" in line for line in report.skipped)


def test_raising_the_cap_restores_full_analysis():
    report = lint_text(fleet_manifest(n_groups=4), max_enum_components=12)
    assert "SA307" not in report.codes()


def test_lazy_verdicts_match_eager_below_the_cap():
    """Same manifest, both pipelines: identical SA205/SA306 verdicts."""
    text = fleet_manifest(n_groups=4, rollbacks=False)  # 12 components
    eager = lint_text(text, max_enum_components=12)
    lazy = lint_text(text, max_enum_components=3)  # force the lazy path
    def named_pair_codes(report):
        return sorted(
            (d.code, d.message)
            for d in report
            if d.code in ("SA205", "SA306")
        )
    assert named_pair_codes(eager) == named_pair_codes(lazy)
