"""Declarative system manifests: the analysis-phase artifact as a file.

The paper's analysis phase (§4.1) has developers prepare
``P = (S, I, T, R, A)``.  A manifest captures the declarative parts —
components with their host processes, dependency invariants, adaptive
actions with costs, named configurations, and (optionally) the critical
communication segments — in a plain-text format, so a system can be
planned, simulated, and statically analyzed without writing Python:

.. code-block:: text

    # video.manifest
    [components]
    D5 @ laptop   : DES 128-bit decoder
    D4 @ laptop   : DES 64-bit decoder
    E1 @ server   : DES 64-bit encoder

    [invariants]
    resource : one_of(D1, D2, D3)
    : E1 -> (D1 | D2) & D4          # unnamed invariant

    [actions]
    A1  : E1 -> E2 @ 10             # replace, cost 10
    A16 : -D4 @ 10                  # remove
    A17 : +D5 @ 10                  # insert
    A14 : (D1, D4, E1) -> (D3, D5, E2) @ 150

    [configurations]
    source = 0100101                # bit vector over [components] order
    target = D3, D5, E2             # or an explicit member list

    [ccs]
    packet : encode send receive decode   # one allowed atomic sequence

``loads``/``dumps`` round-trip; the CLI (``python -m repro``) consumes
manifests directly.

Parsing is two-stage so the static analyzer can see *all* defects:

* :func:`scan` tokenizes the sections into raw entries, each carrying a
  :class:`~repro.span.Span` (line/column provenance).  In strict mode it
  raises :class:`ParseError` at the first syntax problem; in tolerant
  mode (used by ``repro lint``) syntax problems are collected as
  :class:`SyntaxIssue` records and scanning continues.
* :func:`build` turns a scan into a :class:`SystemManifest`, raising
  :class:`ParseError` — now always with a line number and span — on the
  first semantic problem (unknown component, bad bit vector, ...).

:func:`loads` is ``build(scan(text))``, exactly as before.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ccs import CCSSpec
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import Invariant, InvariantSet
from repro.core.model import Component, ComponentUniverse, Configuration
from repro.core.planner import AdaptationPlanner
from repro.errors import (
    ConfigurationError,
    ParseError,
    UnknownComponentError,
)
from repro.expr.ast import to_text
from repro.ltl.ast import PFormula, parse_property, property_to_text
from repro.span import Span

_SECTIONS = (
    "components",
    "invariants",
    "actions",
    "configurations",
    "ccs",
    "properties",
    "conflicts",
)

_COMPONENT_RE = re.compile(
    r"^(?P<name>[A-Za-z_][\w.\-]*)\s*(?:@\s*(?P<process>[\w.\-]+))?"
    r"\s*(?::\s*(?P<description>.*))?$"
)
_ACTION_RE = re.compile(
    r"^(?P<id>[\w.\-]+)\s*:\s*(?P<operation>.+?)\s*@\s*(?P<cost>[0-9.]+)"
    r"\s*(?:;\s*(?P<description>.*))?$"
)
_REPLACE_RE = re.compile(
    r"^(?:\((?P<removes_group>[^)]*)\)|(?P<removes_one>[\w.\-]+))\s*->\s*"
    r"(?:\((?P<adds_group>[^)]*)\)|(?P<adds_one>[\w.\-]+))$"
)


# -- scan-stage entries (raw text + provenance) ---------------------------------


@dataclass(frozen=True)
class ComponentEntry:
    """One ``[components]`` line as scanned."""

    name: str
    process: str
    description: str
    span: Span


@dataclass(frozen=True)
class InvariantEntry:
    """One ``[invariants]`` line as scanned (expression still text)."""

    name: str
    expr_text: str
    span: Span
    expr_span: Span


@dataclass(frozen=True)
class ActionEntry:
    """One ``[actions]`` line as scanned (operation still text)."""

    action_id: str
    operation: str
    cost_text: str
    description: str
    span: Span


@dataclass(frozen=True)
class ConfigEntry:
    """One ``[configurations]`` line as scanned (value still text)."""

    name: str
    value: str
    span: Span
    value_span: Span


@dataclass(frozen=True)
class CCSEntry:
    """One ``[ccs]`` line: a named allowed atomic-action sequence."""

    label: str
    actions: Tuple[str, ...]
    span: Span


@dataclass(frozen=True)
class ConflictEntry:
    """One ``[conflicts]`` line: a pair of actions that must serialize."""

    label: str
    actions: Tuple[str, ...]
    span: Span


@dataclass(frozen=True)
class PropertyEntry:
    """One ``[properties]`` line as scanned (formula still text)."""

    name: str
    formula_text: str
    span: Span
    formula_span: Span


@dataclass(frozen=True)
class SyntaxIssue:
    """A syntax problem recorded during tolerant scanning."""

    message: str
    span: Span


@dataclass
class ManifestSource:
    """The scan result: raw entries with spans, before semantic checks."""

    path: Optional[str] = None
    components: List[ComponentEntry] = field(default_factory=list)
    invariants: List[InvariantEntry] = field(default_factory=list)
    actions: List[ActionEntry] = field(default_factory=list)
    configurations: List[ConfigEntry] = field(default_factory=list)
    ccs: List[CCSEntry] = field(default_factory=list)
    properties: List[PropertyEntry] = field(default_factory=list)
    conflicts: List[ConflictEntry] = field(default_factory=list)
    issues: List[SyntaxIssue] = field(default_factory=list)
    sections: Dict[str, Span] = field(default_factory=dict)
    #: number of physical lines scanned (anchors end-of-file fix edits)
    line_count: int = 0

    def section_span(self, name: str) -> Span:
        """Span of a section header (line 1 when the section is absent)."""
        return self.sections.get(name, Span(1, 1))


@dataclass
class ManifestSpans:
    """Provenance side-table attached to a parsed :class:`SystemManifest`."""

    path: Optional[str] = None
    components: Dict[str, Span] = field(default_factory=dict)
    invariants: Tuple[Span, ...] = ()
    actions: Dict[str, Span] = field(default_factory=dict)
    configurations: Dict[str, Span] = field(default_factory=dict)
    properties: Dict[str, Span] = field(default_factory=dict)
    sections: Dict[str, Span] = field(default_factory=dict)


@dataclass
class SystemManifest:
    """A parsed manifest: the declarative analysis-phase model."""

    universe: ComponentUniverse
    invariants: InvariantSet
    actions: ActionLibrary
    configurations: Dict[str, Configuration] = field(default_factory=dict)
    ccs: Optional[CCSSpec] = None
    properties: Dict[str, PFormula] = field(default_factory=dict)
    #: declared racing action pairs — the planner keeps each pair inside
    #: one collaborative set and lint stops reporting the pair as a race
    conflicts: Tuple[Tuple[str, str], ...] = ()
    spans: ManifestSpans = field(default_factory=ManifestSpans)

    def planner(self, workers: Optional[int] = None) -> AdaptationPlanner:
        return AdaptationPlanner(
            self.universe, self.invariants, self.actions,
            workers=workers, conflicts=self.conflicts,
        )

    def property_named(self, name: str) -> PFormula:
        """Look up a ``[properties]`` entry; raises with the known names."""
        try:
            return self.properties[name]
        except KeyError:
            known = ", ".join(sorted(self.properties)) or "none defined"
            raise ConfigurationError(
                f"unknown property {name!r} (known: {known})"
            ) from None

    def resolve_configuration(self, spec: str) -> Configuration:
        """Resolve a named configuration, bit vector, or member list."""
        if spec in self.configurations:
            return self.configurations[spec]
        stripped = spec.strip()
        if re.fullmatch(r"[01]+", stripped):
            return self.universe.from_bits(stripped)
        members = [part.strip() for part in stripped.split(",") if part.strip()]
        self.universe.validate_members(members)
        return Configuration(members)


def _strip_comment(line: str) -> str:
    # '#' starts a comment unless inside nothing fancy (manifests have no
    # string literals, so a bare find is correct).
    index = line.find("#")
    return line if index < 0 else line[:index]


def _parse_operation(
    text: str, line_no: int, span: Optional[Span] = None
) -> Tuple[frozenset, frozenset]:
    text = text.strip()
    if text.startswith("+"):
        names = [part.strip() for part in text[1:].split(",")]
        return frozenset(), frozenset(filter(None, names))
    if text.startswith("-"):
        names = [part.strip() for part in text[1:].split(",")]
        return frozenset(filter(None, names)), frozenset()
    match = _REPLACE_RE.match(text)
    if match is None:
        raise ParseError(
            f"line {line_no}: cannot parse action operation {text!r}",
            span=span or Span(line_no),
        )
    removes_raw = match.group("removes_group") or match.group("removes_one")
    adds_raw = match.group("adds_group") or match.group("adds_one")
    removes = frozenset(p.strip() for p in removes_raw.split(",") if p.strip())
    adds = frozenset(p.strip() for p in adds_raw.split(",") if p.strip())
    return removes, adds


def scan(
    text: str, path: Optional[str] = None, strict: bool = True
) -> ManifestSource:
    """Stage 1: split a manifest into raw entries with source spans.

    In strict mode the first syntax problem raises :class:`ParseError`
    (with a span); in tolerant mode problems are appended to
    ``source.issues`` and scanning continues with the next line — the
    behavior ``repro lint`` needs to report *every* defect at once.
    """
    source = ManifestSource(path=path)
    source.line_count = text.count("\n") + (1 if text and not text.endswith("\n") else 0)
    section: Optional[str] = None

    def problem(message: str, span: Span) -> None:
        if strict:
            raise ParseError(message, span=span)
        source.issues.append(SyntaxIssue(message, span))

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        span = Span.of_fragment(line_no, raw, line)
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip().lower()
            if name not in _SECTIONS:
                problem(f"line {line_no}: unknown section [{name}]", span)
                section = None  # skip lines until a known section opens
                continue
            section = name
            source.sections.setdefault(section, span)
            continue
        if section is None:
            problem(f"line {line_no}: content before any [section]", span)
            continue
        if section == "components":
            match = _COMPONENT_RE.match(line)
            if match is None:
                problem(f"line {line_no}: bad component {line!r}", span)
                continue
            source.components.append(
                ComponentEntry(
                    name=match.group("name"),
                    process=match.group("process") or "local",
                    description=(match.group("description") or "").strip(),
                    span=Span.of_fragment(line_no, raw, match.group("name")),
                )
            )
        elif section == "invariants":
            if ":" in line:
                name, _, expr_text = line.partition(":")
                name = name.strip()
                expr_text = expr_text.strip()
            else:
                name, expr_text = "", line
            if not expr_text:
                problem(
                    f"line {line_no}: invariant {name!r} has no expression",
                    span,
                )
                continue
            source.invariants.append(
                InvariantEntry(
                    name=name,
                    expr_text=expr_text,
                    span=span,
                    expr_span=Span.of_fragment(line_no, raw, expr_text),
                )
            )
        elif section == "actions":
            match = _ACTION_RE.match(line)
            if match is None:
                problem(f"line {line_no}: bad action {line!r}", span)
                continue
            source.actions.append(
                ActionEntry(
                    action_id=match.group("id"),
                    operation=match.group("operation"),
                    cost_text=match.group("cost"),
                    description=(match.group("description") or "").strip(),
                    span=span,
                )
            )
        elif section == "configurations":
            name, eq, value = line.partition("=")
            if not eq:
                problem(
                    f"line {line_no}: configurations need 'name = value'", span
                )
                continue
            source.configurations.append(
                ConfigEntry(
                    name=name.strip(),
                    value=value.strip(),
                    span=span,
                    value_span=Span.of_fragment(line_no, raw, value.strip()),
                )
            )
        elif section == "ccs":
            label, colon, seq_text = line.partition(":")
            if not colon:
                label, seq_text = "", line
            actions = tuple(
                part for part in re.split(r"[,\s]+", seq_text.strip()) if part
            )
            if not actions:
                problem(
                    f"line {line_no}: ccs entry needs at least one atomic action",
                    span,
                )
                continue
            source.ccs.append(
                CCSEntry(label=label.strip(), actions=actions, span=span)
            )
        elif section == "conflicts":
            label, colon, seq_text = line.partition(":")
            if not colon:
                label, seq_text = "", line
            actions = tuple(
                part for part in re.split(r"[,\s]+", seq_text.strip()) if part
            )
            if len(actions) != 2:
                problem(
                    f"line {line_no}: conflicts entries name exactly two "
                    f"actions, got {len(actions)}",
                    span,
                )
                continue
            if actions[0] == actions[1]:
                problem(
                    f"line {line_no}: conflict pair repeats action "
                    f"{actions[0]!r}",
                    span,
                )
                continue
            source.conflicts.append(
                ConflictEntry(label=label.strip(), actions=actions, span=span)
            )
        elif section == "properties":
            name, colon, formula_text = line.partition(":")
            name = name.strip()
            formula_text = formula_text.strip()
            if not colon or not name or not formula_text:
                problem(
                    f"line {line_no}: properties need 'name : formula'", span
                )
                continue
            source.properties.append(
                PropertyEntry(
                    name=name,
                    formula_text=formula_text,
                    span=span,
                    formula_span=Span.of_fragment(line_no, raw, formula_text),
                )
            )
    return source


def build(source: ManifestSource) -> SystemManifest:
    """Stage 2: semantic construction; raises :class:`ParseError` on defects.

    Every error message carries the offending line number (and the raised
    exception a :class:`Span`) — including invariant and configuration
    entries, which previously reported no location at all.
    """
    if source.issues:
        issue = source.issues[0]
        raise ParseError(issue.message, span=issue.span)
    if not source.components:
        raise ParseError(
            "manifest has no [components]", span=source.section_span("components")
        )
    spans = ManifestSpans(path=source.path, sections=dict(source.sections))
    seen: Dict[str, Span] = {}
    components: List[Component] = []
    for entry in source.components:
        if entry.name in seen:
            raise ParseError(
                f"line {entry.span.line}: duplicate component {entry.name!r} "
                f"(first declared on line {seen[entry.name].line})",
                span=entry.span,
            )
        seen[entry.name] = entry.span
        components.append(
            Component(entry.name, process=entry.process, description=entry.description)
        )
    universe = ComponentUniverse(components)
    spans.components = seen

    invariants_out: List[Invariant] = []
    invariant_spans: List[Span] = []
    for inv_entry in source.invariants:
        try:
            invariant = Invariant(inv_entry.expr_text, name=inv_entry.name)
        except ParseError as exc:
            raise ParseError(
                f"line {inv_entry.span.line}: bad invariant expression "
                f"{inv_entry.expr_text!r}: {exc}",
                span=inv_entry.expr_span,
            ) from exc
        unknown = invariant.atoms() - universe.names
        if unknown:
            raise ParseError(
                f"line {inv_entry.span.line}: invariant {invariant.name!r} "
                f"mentions unknown components {sorted(unknown)}",
                span=inv_entry.expr_span,
            )
        invariants_out.append(invariant)
        invariant_spans.append(inv_entry.span)
    invariants = InvariantSet(invariants_out)
    spans.invariants = tuple(invariant_spans)

    actions = ActionLibrary()
    for act_entry in source.actions:
        line_no = act_entry.span.line
        removes, adds = _parse_operation(act_entry.operation, line_no, act_entry.span)
        try:
            cost = float(act_entry.cost_text)
        except ValueError:
            raise ParseError(
                f"line {line_no}: action {act_entry.action_id} has a bad "
                f"cost {act_entry.cost_text!r}",
                span=act_entry.span,
            ) from None
        unknown = (removes | adds) - universe.names
        if unknown:
            raise ParseError(
                f"line {line_no}: action {act_entry.action_id} uses unknown "
                f"components {sorted(unknown)}",
                span=act_entry.span,
            )
        if act_entry.action_id in actions:
            raise ParseError(
                f"line {line_no}: duplicate action id {act_entry.action_id!r}",
                span=act_entry.span,
            )
        actions.add(
            AdaptiveAction(
                act_entry.action_id, removes, adds, cost, act_entry.description
            )
        )
        spans.actions[act_entry.action_id] = act_entry.span

    ccs: Optional[CCSSpec] = None
    if source.ccs:
        ccs = CCSSpec([entry.actions for entry in source.ccs], name="manifest")

    conflicts: List[Tuple[str, str]] = []
    for conflict_entry in source.conflicts:
        unknown = [aid for aid in conflict_entry.actions if aid not in actions]
        if unknown:
            raise ParseError(
                f"line {conflict_entry.span.line}: conflict names unknown "
                f"action(s) {sorted(unknown)}",
                span=conflict_entry.span,
            )
        first, second = sorted(conflict_entry.actions)
        if (first, second) not in conflicts:
            conflicts.append((first, second))

    manifest = SystemManifest(
        universe, invariants, actions, ccs=ccs,
        conflicts=tuple(conflicts), spans=spans,
    )
    for cfg_entry in source.configurations:
        try:
            resolved = manifest.resolve_configuration(cfg_entry.value)
        except (ConfigurationError, UnknownComponentError) as exc:
            raise ParseError(
                f"line {cfg_entry.span.line}: bad configuration "
                f"{cfg_entry.name!r}: {exc}",
                span=cfg_entry.value_span,
            ) from exc
        manifest.configurations[cfg_entry.name] = resolved
        spans.configurations[cfg_entry.name] = cfg_entry.span
    for prop_entry in source.properties:
        line_no = prop_entry.span.line
        if prop_entry.name in manifest.properties:
            raise ParseError(
                f"line {line_no}: duplicate property {prop_entry.name!r}",
                span=prop_entry.span,
            )
        try:
            formula = parse_property(prop_entry.formula_text)
        except ParseError as exc:
            span = prop_entry.formula_span
            if exc.position:
                span = Span(
                    span.line, span.column + exc.position,
                    span.line, span.end_column,
                )
            raise ParseError(
                f"line {line_no}: bad property formula "
                f"{prop_entry.formula_text!r}: {exc}",
                span=span,
            ) from exc
        unknown = formula.atoms() - universe.names
        if unknown:
            raise ParseError(
                f"line {line_no}: property {prop_entry.name!r} mentions "
                f"unknown components {sorted(unknown)}",
                span=prop_entry.formula_span,
            )
        manifest.properties[prop_entry.name] = formula
        spans.properties[prop_entry.name] = prop_entry.span
    return manifest


def loads(text: str, path: Optional[str] = None) -> SystemManifest:
    """Parse a manifest string.  Raises :class:`ParseError` on bad input."""
    return build(scan(text, path=path, strict=True))


def load_path(path) -> SystemManifest:
    """Parse a manifest file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), path=str(path))


def dumps(manifest: SystemManifest) -> str:
    """Render a manifest back to text (``loads``/``dumps`` round-trips)."""
    lines: List[str] = ["[components]"]
    for component in manifest.universe:
        entry = f"{component.name} @ {component.process}"
        if component.description:
            entry += f" : {component.description}"
        lines.append(entry)
    lines.append("")
    lines.append("[invariants]")
    for invariant in manifest.invariants:
        rendered = to_text(invariant.expr)
        name = invariant.name if invariant.name != rendered else ""
        lines.append(f"{name} : {rendered}".strip())
    lines.append("")
    lines.append("[actions]")
    for action in manifest.actions:
        entry = f"{action.action_id} : {action.operation_text()} @ {action.cost:g}"
        if action.description:
            entry += f" ; {action.description}"
        lines.append(entry)
    if manifest.configurations:
        lines.append("")
        lines.append("[configurations]")
        for name, config in manifest.configurations.items():
            lines.append(f"{name} = {manifest.universe.to_bits(config)}")
    if manifest.ccs is not None:
        lines.append("")
        lines.append("[ccs]")
        for index, sequence in enumerate(manifest.ccs.allowed):
            lines.append(f"seg{index} : {' '.join(sequence)}")
    if manifest.properties:
        lines.append("")
        lines.append("[properties]")
        for name, formula in manifest.properties.items():
            lines.append(f"{name} : {property_to_text(formula)}")
    if manifest.conflicts:
        lines.append("")
        lines.append("[conflicts]")
        for index, (first, second) in enumerate(manifest.conflicts):
            lines.append(f"pair{index} : {first} {second}")
    lines.append("")
    return "\n".join(lines)


def video_manifest_text() -> str:
    """The §5 video system as a manifest (used by docs, tests, and CLI)."""
    from repro.apps.video.system import (
        PAPER_SOURCE_BITS,
        PAPER_TARGET_BITS,
        video_actions,
        video_invariants,
        video_universe,
    )

    manifest = SystemManifest(
        video_universe(), video_invariants(), video_actions()
    )
    manifest.configurations["source"] = manifest.universe.from_bits(PAPER_SOURCE_BITS)
    manifest.configurations["target"] = manifest.universe.from_bits(PAPER_TARGET_BITS)
    return dumps(manifest)
