"""Experiments C3/P3 — §7 scalability: SAG explosion and its remedies.

The paper: "the computational complexity may be high when there are
numerous adaptive components ... exponential to the number of components
involved".  Remedies it proposes: collaborative-set decomposition and
heuristic partial exploration of the SAG.

Two measured axes, both persisted to ``BENCH_scalability.json``:

* **serial vs workers** — chunked work-stealing enumeration on the
  xor-stress universes (16/20 components) where per-node invariant work
  dominates and prefix partitions carry near-identical load.  The CI
  gate (``test_parallel_speedup_gate``) requires >=1.5x at workers=4 on
  the 20-component universe and is skipped below 4 cores; on smaller
  hosts the recorded ``mode``/``reason`` row shows the clamp or serial
  fallback honestly instead of a fake speedup.
* **eager vs lazy** — full eager pipeline (enumerate safe space + build
  SAG + Dijkstra) against :meth:`AdaptationPlanner.lazy_plan` frontier
  point queries at 21/28/35 components.  The CI gate
  (``test_lazy_point_query_gate``) requires the 28-component point
  query to beat eager build+plan by >=10x; the 35-component rows are
  the beyond-the-barrier acceptance check (eager enumeration of 8^5
  configurations is no longer attempted at all).
"""

import os
import time
import warnings
from pathlib import Path

import pytest

from benchmarks.conftest import report
from repro.bench import format_table, replicated_video_system
from repro.bench.workloads import enumeration_stress_system
from repro.core.model import Configuration
from repro.core.planner import AdaptationPlanner
from repro.core.space import SafeConfigurationSpace

SCALABILITY_JSON = Path(__file__).with_name("BENCH_scalability.json")


def plan_monolithic(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    plan = planner.plan(system.source, system.target)
    return plan, planner.sag.node_count


def plan_lazy(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    return planner.plan_lazy(system.source, system.target)


def plan_collaborative(system):
    planner = AdaptationPlanner(system.universe, system.invariants, system.actions)
    return planner.plan_collaborative(system.source, system.target)


@pytest.mark.parametrize("groups", [1, 2, 3])
def test_monolithic_sag(benchmark, groups):
    system = replicated_video_system(groups)
    plan, nodes = benchmark(lambda: plan_monolithic(system))
    assert nodes == 8 ** groups  # the exponential blow-up, literally
    assert plan.total_cost == 50.0 * groups
    benchmark.extra_info["sag_nodes"] = nodes


@pytest.mark.parametrize("groups", [1, 2, 3, 4, 6])
def test_collaborative_planner(benchmark, groups):
    system = replicated_video_system(groups)
    plan = benchmark(lambda: plan_collaborative(system))
    assert plan.total_cost == 50.0 * groups
    assert len(plan) == 5 * groups


@pytest.mark.parametrize("groups", [1, 2, 3])
def test_lazy_astar_planner(benchmark, groups):
    system = replicated_video_system(groups)
    plan = benchmark(lambda: plan_lazy(system))
    assert plan.total_cost == 50.0 * groups


# --- serial vs workers ------------------------------------------------------


def _enumerate_timed(system, workers):
    with warnings.catch_warnings():
        # On hosts with fewer cores than requested workers the space
        # clamps with a RuntimeWarning; the recorded stats row already
        # carries that information.
        warnings.simplefilter("ignore", RuntimeWarning)
        space = SafeConfigurationSpace(
            system.universe, system.invariants, workers=workers
        )
        t0 = time.perf_counter()
        out = space.enumerate()
        elapsed = time.perf_counter() - t0
    return out, elapsed, space


@pytest.mark.parametrize("n", [16, 20])
def test_parallel_enumeration(benchmark, n):
    """The workers axis of C3 on the xor-stress universes.

    Correctness is the hard assertion (work-stealing result identical to
    the serial enumerator, memo merged); the speedup is recorded from
    ``last_enumeration_stats`` with its mode and reason, so a host where
    the pool clamps to one core (or the space falls back to serial)
    produces an honest row instead of a fake win.  The >=1.5x speedup
    *gate* lives in :func:`test_parallel_speedup_gate`.
    """
    workers = 4
    system = enumeration_stress_system(n)
    serial, serial_s, serial_space = _enumerate_timed(system, None)
    serial_stats = serial_space.last_enumeration_stats

    parallel, parallel_s, space = benchmark.pedantic(
        lambda: _enumerate_timed(system, workers), rounds=1, iterations=1
    )
    assert parallel == serial
    assert space.safe_memo  # worker memos were merged on join
    stats = space.last_enumeration_stats
    speedup = serial_s / max(parallel_s, 1e-9)
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["speedup_vs_serial"] = round(speedup, 2)
    report(
        f"P3 parallel enumeration (n={n}, workers={workers})",
        f"{n} components, safe configs={len(serial)}: "
        f"serial {serial_s * 1e3:.1f} ms, workers={workers} "
        f"{parallel_s * 1e3:.1f} ms ({speedup:.2f}x) "
        f"[mode={stats.mode}: {stats.reason}]",
        data={
            "components": n,
            "requested_workers": workers,
            "effective_workers": stats.effective_workers,
            "mode": stats.mode,
            "reason": stats.reason,
            "chunks": stats.chunks,
            "safe_configs": len(serial),
            "serial_ms": round(serial_s * 1e3, 2),
            "parallel_ms": round(parallel_s * 1e3, 2),
            "speedup_vs_serial": round(speedup, 2),
            "host_cpus": os.cpu_count(),
            "serial_reason": serial_stats.reason,
        },
        json_path=SCALABILITY_JSON,
    )


def test_forced_pool_overhead(monkeypatch):
    """Pool machinery overhead with the clamp and auto-serial forced off.

    Forces the work-stealing pool path even on hosts with fewer than 4
    cores (where the clamp would normally fall back to serial).  On a
    1-core host the pool cannot be faster — this row bounds the *cost*
    of the machinery (payload pickling, worker warm-up, chunk merge),
    which the previous static-partition implementation paid at 4-5x and
    the work-stealing one pays at a few percent.  Interpret the speedup
    together with ``host_cpus``.
    """
    import repro.core.space as space_mod

    monkeypatch.setattr(space_mod, "_cpu_count", lambda: max(4, os.cpu_count() or 1))
    monkeypatch.setattr(space_mod, "MIN_PARALLEL_MASK_NODES", 1)
    system = enumeration_stress_system(20)
    serial, serial_s, _ = _enumerate_timed(system, None)
    parallel, parallel_s, space = _enumerate_timed(system, 4)
    assert parallel == serial
    stats = space.last_enumeration_stats
    assert stats.mode == "parallel", stats.reason
    speedup = serial_s / max(parallel_s, 1e-9)
    report(
        "P3 forced pool (n=20, workers=4, clamp disabled)",
        f"serial {serial_s * 1e3:.1f} ms, forced pool {parallel_s * 1e3:.1f} ms "
        f"({speedup:.2f}x on {os.cpu_count()} host cpu(s)) [{stats.reason}]",
        data={
            "serial_ms": round(serial_s * 1e3, 2),
            "parallel_ms": round(parallel_s * 1e3, 2),
            "speedup_vs_serial": round(speedup, 2),
            "host_cpus": os.cpu_count(),
            "chunks": stats.chunks,
            "reason": stats.reason,
        },
        json_path=SCALABILITY_JSON,
    )


@pytest.mark.parametrize("n", [16, 20])
def test_pool_reuse(monkeypatch, n):
    """Serial vs pool-cold vs pool-warm on the same spec digest.

    The first parallel enumeration of a spec pays the pool spin-up and
    the shared-memory plane round-trip; repeating it replays the merged
    result plane from the parent-side cache without touching the pool at
    all.  Three honest rows per universe (clamp and auto-serial forced
    off so the cold row exists even on small hosts); the >=5x reuse
    *gate* lives in :func:`test_pool_reuse_gate`.
    """
    import repro.core.space as space_mod
    import repro.parallel as par

    monkeypatch.setattr(space_mod, "_cpu_count", lambda: max(4, os.cpu_count() or 1))
    monkeypatch.setattr(space_mod, "MIN_PARALLEL_MASK_NODES", 1)
    system = enumeration_stress_system(n)
    serial, serial_s, _ = _enumerate_timed(system, None)

    par.clear_result_caches()
    par.shutdown_pools()
    cold, cold_s, cold_space = _enumerate_timed(system, 4)
    cold_stats = cold_space.last_enumeration_stats
    assert cold_stats.mode == "parallel", cold_stats.reason
    assert not cold_stats.pool_warm

    warm, warm_s, warm_space = _enumerate_timed(system, 4)
    warm_stats = warm_space.last_enumeration_stats
    assert warm_stats.mode == "parallel", warm_stats.reason
    assert warm_stats.pool_warm
    assert warm_stats.transport == "plane-cache"
    assert cold == serial and warm == serial
    reuse = cold_s / max(warm_s, 1e-9)
    report(
        f"P3 pool reuse (n={n}, workers=4)",
        f"serial {serial_s * 1e3:.1f} ms | pool-cold {cold_s * 1e3:.1f} ms "
        f"(spinup {cold_stats.pool_spinup_ms:.1f} ms, via "
        f"{cold_stats.transport}) | pool-warm {warm_s * 1e3:.2f} ms "
        f"(via {warm_stats.transport}, {reuse:.1f}x over cold)",
        data={
            "components": n,
            "safe_configs": len(serial),
            "serial_ms": round(serial_s * 1e3, 2),
            "pool_cold_ms": round(cold_s * 1e3, 2),
            "pool_cold_spinup_ms": round(cold_stats.pool_spinup_ms, 2),
            "pool_cold_transport": cold_stats.transport,
            "pool_warm_ms": round(warm_s * 1e3, 3),
            "pool_warm_transport": warm_stats.transport,
            "reuse_speedup": round(reuse, 1),
            "host_cpus": os.cpu_count(),
        },
        json_path=SCALABILITY_JSON,
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="pool reuse gate needs >=4 physical cores",
)
@pytest.mark.parametrize("n", [16, 20])
def test_pool_reuse_gate(monkeypatch, n):
    """CI gate: re-enumerating the same spec >=5x faster than pool-cold.

    The second enumeration of a digest must come from the warm plane
    cache (no pool round-trip); measured reuse is orders of magnitude,
    5x is the regression floor.  The 16-component universe sits below
    the auto-parallel node floor, so the floor is lowered to force the
    pool path for both sizes.
    """
    import repro.core.space as space_mod
    import repro.parallel as par

    monkeypatch.setattr(space_mod, "MIN_PARALLEL_MASK_NODES", 1)
    system = enumeration_stress_system(n)
    par.clear_result_caches()
    par.shutdown_pools()
    cold, cold_s, cold_space = _enumerate_timed(system, 4)
    warm, warm_s, warm_space = _enumerate_timed(system, 4)
    assert cold_space.last_enumeration_stats.mode == "parallel"
    assert warm_space.last_enumeration_stats.transport == "plane-cache"
    assert warm == cold
    reuse = cold_s / max(warm_s, 1e-9)
    report(
        f"P3 pool reuse gate (n={n}, workers=4)",
        f"pool-cold {cold_s * 1e3:.1f} ms vs pool-warm {warm_s * 1e3:.2f} ms "
        f"({reuse:.1f}x, gate >=5x)",
        data={
            "components": n,
            "pool_cold_ms": round(cold_s * 1e3, 2),
            "pool_warm_ms": round(warm_s * 1e3, 3),
            "reuse_speedup": round(reuse, 1),
            "gate": 5.0,
        },
        json_path=SCALABILITY_JSON,
    )
    assert reuse >= 5.0, (
        f"pool reuse regressed: warm enumeration only {reuse:.1f}x faster "
        f"than cold ({warm_s * 1e3:.2f} ms vs {cold_s * 1e3:.1f} ms)"
    )


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup gate needs >=4 physical cores",
)
def test_parallel_speedup_gate(benchmark):
    """CI gate: work-stealing enumeration >=1.5x serial at workers=4.

    Runs on the 20-component xor-stress universe where serial cost is
    ~1s and partitions carry uniform work; on a 4-core host the chunked
    pool lands around 3x.  Skipped (not faked) below 4 cores.
    """
    system = enumeration_stress_system(20)
    serial, serial_s, _ = _enumerate_timed(system, None)
    parallel, parallel_s, space = benchmark.pedantic(
        lambda: _enumerate_timed(system, 4), rounds=1, iterations=1
    )
    assert parallel == serial
    stats = space.last_enumeration_stats
    assert stats.mode == "parallel", stats.reason
    speedup = serial_s / max(parallel_s, 1e-9)
    report(
        "P3 speedup gate (n=20, workers=4)",
        f"serial {serial_s * 1e3:.1f} ms, parallel {parallel_s * 1e3:.1f} ms "
        f"({speedup:.2f}x, gate >=1.5x)",
        data={
            "serial_ms": round(serial_s * 1e3, 2),
            "parallel_ms": round(parallel_s * 1e3, 2),
            "speedup_vs_serial": round(speedup, 2),
            "gate": 1.5,
        },
        json_path=SCALABILITY_JSON,
    )
    assert speedup >= 1.5, (
        f"work-stealing enumeration regressed: {speedup:.2f}x < 1.5x "
        f"(serial {serial_s * 1e3:.0f} ms vs parallel {parallel_s * 1e3:.0f} ms)"
    )


# --- eager vs lazy ----------------------------------------------------------


def _fresh_planner(system):
    return AdaptationPlanner(system.universe, system.invariants, system.actions)


def _local_target(system):
    """The paper adaptation applied to group 0 only (a *local* query)."""
    keep = [m for m in system.source.members if "@g0" not in m]
    move = [m for m in system.target.members if "@g0" in m]
    return Configuration(keep + move)


def _adjacent_target(system):
    """One cheapest safe action away from the source (a *point* query)."""
    planner = _fresh_planner(system)
    src_mask = system.universe.mask_of(system.source)
    arcs = planner.lazy_sag.successors(src_mask)
    _, _, nxt = min(arcs, key=lambda arc: (arc[1], arc[0]))
    return system.universe.from_mask(nxt)


def _best_of(fn, rounds=3):
    best = float("inf")
    value = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return value, best


@pytest.mark.parametrize("groups", [3, 4])
def test_eager_vs_lazy(benchmark, groups):
    """Eager pipeline vs lazy frontier at 21/28 components.

    Every timing is a *cold* planner (enumeration + SAG + shortest-path
    for eager; memoized frontier search for lazy), and the full-distance
    plans must be identical — same actions, same cost — because
    ``lazy_plan`` is exact, not heuristic.
    """
    system = replicated_video_system(groups)
    local = _local_target(system)
    adjacent = _adjacent_target(system)

    eager_plan, eager_s = _best_of(
        lambda: _fresh_planner(system).plan(system.source, system.target)
    )
    lazy_plan_full, lazy_full_s = benchmark.pedantic(
        lambda: _best_of(
            lambda: _fresh_planner(system).lazy_plan(system.source, system.target)
        ),
        rounds=1,
        iterations=1,
    )
    _, lazy_local_s = _best_of(
        lambda: _fresh_planner(system).lazy_plan(system.source, local)
    )
    _, lazy_adjacent_s = _best_of(
        lambda: _fresh_planner(system).lazy_plan(system.source, adjacent)
    )
    assert lazy_plan_full.action_ids == eager_plan.action_ids
    assert lazy_plan_full.total_cost == eager_plan.total_cost == 50.0 * groups
    report(
        f"P3 eager vs lazy ({7 * groups} components)",
        f"eager build+plan {eager_s * 1e3:.1f} ms | lazy full-distance "
        f"{lazy_full_s * 1e3:.1f} ms, local {lazy_local_s * 1e3:.1f} ms, "
        f"point {lazy_adjacent_s * 1e3:.2f} ms",
        data={
            "components": 7 * groups,
            "eager_build_plan_ms": round(eager_s * 1e3, 2),
            "lazy_full_distance_ms": round(lazy_full_s * 1e3, 2),
            "lazy_local_query_ms": round(lazy_local_s * 1e3, 2),
            "lazy_point_query_ms": round(lazy_adjacent_s * 1e3, 3),
            "point_query_speedup": round(eager_s / max(lazy_adjacent_s, 1e-9), 1),
        },
        json_path=SCALABILITY_JSON,
    )


def test_lazy_point_query_gate():
    """CI gate: lazy point query >=10x faster than eager build+plan at 28.

    The eager path must enumerate 8^4 = 4096 safe configurations and
    compile the full SAG before answering anything; the lazy frontier
    answers a one-action query after expanding a handful of vertices.
    The measured gap is ~100x+; 10x is the regression floor.
    """
    system = replicated_video_system(4)
    adjacent = _adjacent_target(system)
    eager_plan, eager_s = _best_of(
        lambda: _fresh_planner(system).plan(system.source, system.target)
    )
    lazy_point, lazy_s = _best_of(
        lambda: _fresh_planner(system).lazy_plan(system.source, adjacent)
    )
    assert len(lazy_point) == 1  # genuinely adjacent
    ratio = eager_s / max(lazy_s, 1e-9)
    report(
        "P3 point-query gate (28 components)",
        f"eager build+plan {eager_s * 1e3:.1f} ms vs lazy point query "
        f"{lazy_s * 1e3:.2f} ms ({ratio:.0f}x, gate >=10x)",
        data={
            "eager_build_plan_ms": round(eager_s * 1e3, 2),
            "lazy_point_query_ms": round(lazy_s * 1e3, 3),
            "speedup": round(ratio, 1),
            "gate": 10.0,
        },
        json_path=SCALABILITY_JSON,
    )
    assert ratio >= 10.0, (
        f"lazy point query regressed: only {ratio:.1f}x faster than eager "
        f"({lazy_s * 1e3:.1f} ms vs {eager_s * 1e3:.1f} ms)"
    )


def test_beyond_the_barrier():
    """Acceptance: 35 components — past the eager enumeration horizon.

    8^5 = 32768 safe configurations would have to be enumerated and
    wired into a SAG before the eager planner answers anything; the lazy
    planner answers point and local queries without ever materializing
    the space (asserted: no eager cache, no monolithic SAG exist after
    planning).
    """
    system = replicated_video_system(5)
    assert len(system.universe) == 35
    local = _local_target(system)
    adjacent = _adjacent_target(system)
    planner = _fresh_planner(system)
    t0 = time.perf_counter()
    point = planner.lazy_plan(system.source, adjacent)
    point_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    local_plan = planner.lazy_plan(system.source, local)
    local_s = time.perf_counter() - t0
    assert len(point) == 1
    assert local_plan.total_cost == 50.0
    # the whole point: nothing eager was ever built
    assert planner._sag is None
    assert planner.space._cache is None
    report(
        "P3 beyond the enumeration barrier (35 components)",
        f"lazy point query {point_s * 1e3:.2f} ms, local adaptation "
        f"{local_s * 1e3:.1f} ms; eager space (8^5 configs) never built",
        data={
            "components": 35,
            "lazy_point_query_ms": round(point_s * 1e3, 3),
            "lazy_local_query_ms": round(local_s * 1e3, 2),
            "expanded_nodes": planner.lazy_sag.expanded_nodes,
            "eager_space_materialized": False,
        },
        json_path=SCALABILITY_JSON,
    )


def test_crossover_summary(benchmark):
    """One table: where the monolithic planner falls off a cliff."""
    benchmark.pedantic(
        lambda: plan_collaborative(replicated_video_system(1)),
        rounds=1, iterations=1,
    )
    rows = []
    for groups in (1, 2, 3):
        system = replicated_video_system(groups)
        t0 = time.perf_counter()
        _, nodes = plan_monolithic(system)
        monolithic_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        plan_collaborative(system)
        collaborative_s = time.perf_counter() - t0
        rows.append(
            (
                groups,
                7 * groups,
                nodes,
                f"{monolithic_s * 1e3:.1f}",
                f"{collaborative_s * 1e3:.1f}",
                f"{monolithic_s / max(collaborative_s, 1e-9):.0f}x",
            )
        )
    report(
        "§7 scalability (measured)",
        format_table(
            [
                "groups", "components", "SAG nodes",
                "monolithic (ms)", "collaborative (ms)", "speedup",
            ],
            rows,
        ),
        data=[
            {
                "groups": r[0],
                "components": r[1],
                "sag_nodes": r[2],
                "monolithic_ms": float(r[3]),
                "collaborative_ms": float(r[4]),
            }
            for r in rows
        ],
        json_path=SCALABILITY_JSON,
    )
    # shape: the gap must widen with n
    speedups = [float(r[5][:-1]) for r in rows]
    assert speedups[-1] > speedups[0]
