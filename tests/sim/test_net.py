"""Unit tests for the simulated network."""

import pytest

from repro.errors import SimulationError
from repro.protocol.messages import Envelope, StatusQuery
from repro.sim.kernel import Simulator
from repro.sim.net import (
    BernoulliLoss,
    BurstLoss,
    FixedDelay,
    Network,
    NoLoss,
    UniformDelay,
)


def msg(tag="m"):
    return StatusQuery(step_key=tag)


@pytest.fixture
def rig():
    sim = Simulator(seed=1)
    net = Network(sim, default_delay=FixedDelay(1.0))
    inboxes = {"a": [], "b": [], "c": []}
    for pid in inboxes:
        net.register(pid, inboxes[pid].append)
    return sim, net, inboxes


class TestDelivery:
    def test_basic_delivery_with_delay(self, rig):
        sim, net, inboxes = rig
        net.send(Envelope("a", "b", msg()))
        assert inboxes["b"] == []
        sim.run()
        assert len(inboxes["b"]) == 1
        assert sim.now == 1.0

    def test_unknown_destination_raises(self, rig):
        _, net, _ = rig
        with pytest.raises(SimulationError):
            net.send(Envelope("a", "zzz", msg()))

    def test_duplicate_registration_rejected(self, rig):
        _, net, _ = rig
        with pytest.raises(SimulationError):
            net.register("a", lambda e: None)

    def test_fifo_per_channel(self):
        sim = Simulator(seed=3)
        net = Network(sim, default_delay=UniformDelay(0.1, 5.0))
        received = []
        net.register("dst", lambda e: received.append(e.message.step_key))
        net.register("src", lambda e: None)
        for index in range(20):
            net.send(Envelope("src", "dst", msg(str(index))))
        sim.run()
        assert received == [str(i) for i in range(20)]

    def test_non_fifo_channel_may_reorder(self):
        sim = Simulator(seed=3)
        net = Network(sim, default_delay=UniformDelay(0.1, 5.0))
        net.set_channel("src", "dst", fifo=False)
        received = []
        net.register("dst", lambda e: received.append(e.message.step_key))
        net.register("src", lambda e: None)
        for index in range(20):
            net.send(Envelope("src", "dst", msg(str(index))))
        sim.run()
        assert sorted(received, key=int) == [str(i) for i in range(20)]
        assert received != [str(i) for i in range(20)]  # reordered at this seed

    def test_stats_counted(self, rig):
        sim, net, _ = rig
        net.send(Envelope("a", "b", msg()))
        sim.run()
        assert net.messages_sent == 1
        assert net.messages_delivered == 1
        assert net.messages_dropped == 0


class TestLoss:
    def test_no_loss(self):
        assert not NoLoss().drops(None)

    def test_bernoulli_bounds_validated(self):
        with pytest.raises(ValueError):
            BernoulliLoss(1.5)

    def test_full_loss_drops_everything(self, rig):
        sim, net, inboxes = rig
        net.set_channel("a", "b", loss=BernoulliLoss(1.0))
        for _ in range(5):
            net.send(Envelope("a", "b", msg()))
        sim.run()
        assert inboxes["b"] == []
        assert net.messages_dropped == 5

    def test_partial_loss_statistics(self):
        sim = Simulator(seed=11)
        net = Network(sim, default_loss=BernoulliLoss(0.3))
        net.register("dst", lambda e: None)
        net.register("src", lambda e: None)
        for _ in range(500):
            net.send(Envelope("src", "dst", msg()))
        sim.run()
        assert 90 < net.messages_dropped < 220  # ≈ 150 expected

    def test_burst_loss_produces_runs(self):
        sim = Simulator(seed=5)
        model = BurstLoss(p_enter=0.2, p_exit=0.3)
        outcomes = [model.drops(sim.rng) for _ in range(300)]
        # there must be at least one run of >= 3 consecutive drops
        run, best = 0, 0
        for dropped in outcomes:
            run = run + 1 if dropped else 0
            best = max(best, run)
        assert best >= 3


class TestPartitions:
    def test_partition_blocks_both_directions(self, rig):
        sim, net, inboxes = rig
        net.partition("a", "b")
        net.send(Envelope("a", "b", msg()))
        net.send(Envelope("b", "a", msg()))
        sim.run()
        assert inboxes["a"] == [] and inboxes["b"] == []
        assert net.messages_dropped == 2

    def test_heal_restores(self, rig):
        sim, net, inboxes = rig
        net.partition("a", "b")
        net.heal("a", "b")
        net.send(Envelope("a", "b", msg()))
        sim.run()
        assert len(inboxes["b"]) == 1

    def test_partition_leaves_other_channels(self, rig):
        sim, net, inboxes = rig
        net.partition("a", "b")
        net.send(Envelope("a", "c", msg()))
        sim.run()
        assert len(inboxes["c"]) == 1

    def test_heal_all(self, rig):
        _, net, _ = rig
        net.partition("a", "b")
        net.partition("a", "c")
        net.heal_all()
        assert not net.is_partitioned("a", "b")
        assert not net.is_partitioned("a", "c")


class TestMulticast:
    def test_group_membership(self, rig):
        _, net, _ = rig
        net.group_join("g", "a")
        net.group_join("g", "b")
        net.group_join("g", "b")  # idempotent
        assert net.group_members("g") == ("a", "b")
        net.group_leave("g", "a")
        assert net.group_members("g") == ("b",)

    def test_multicast_excludes_sender(self, rig):
        sim, net, inboxes = rig
        for pid in ("a", "b", "c"):
            net.group_join("g", pid)
        net.multicast("a", "g", msg())
        sim.run()
        assert len(inboxes["a"]) == 0
        assert len(inboxes["b"]) == 1
        assert len(inboxes["c"]) == 1
