"""Unit tests for the Safe Adaptation Graph (Figure 4)."""

import pytest

from repro.core.sag import SafeAdaptationGraph


@pytest.fixture
def sag(planner):
    return planner.sag


class TestStructure:
    def test_nodes_are_safe_configurations(self, sag, planner):
        assert sag.node_count == 8
        for config in planner.space.enumerate():
            assert config in sag

    def test_every_edge_connects_safe_configs_via_valid_action(self, sag, planner):
        for src, action_id, dst in sag.edge_list():
            action = planner.actions.get(action_id)
            assert planner.space.is_safe(src)
            assert planner.space.is_safe(dst)
            assert action.is_applicable(src)
            assert action.apply(src) == dst

    def test_no_edge_to_unsafe_result(self, sag, planner, universe):
        # A5 (D4→D5) from {D1,D4,E1} gives {D1,D5,E1}: unsafe (E1 needs D4).
        source = universe.from_bits("0100101")
        assert "A5" not in {a.action_id for a, _ in sag.steps_from(source)}


class TestFigure4:
    """The arcs explicitly drawn in Figure 4 must all be present."""

    FIGURE4_ARCS = [
        # (source bits, action, target bits)
        ("0100101", "A2", "0101001"),
        ("0100101", "A13", "1001010"),
        ("0100101", "A14", "1010010"),
        ("0100101", "A17", "1100101"),
        ("0101001", "A9", "1001010"),
        ("0101001", "A15", "1010010"),
        ("0101001", "A17", "1101001"),
        ("1001010", "A4", "1010010"),
        ("1100101", "A2", "1101001"),
        ("1100101", "A7", "1110010"),
        ("1101001", "A1", "1101010"),
        ("1101010", "A4", "1110010"),
        ("1101010", "A16", "1001010"),
        ("1110010", "A16", "1010010"),
    ]

    def test_all_drawn_arcs_exist(self, sag, universe):
        for src_bits, action_id, dst_bits in self.FIGURE4_ARCS:
            src = universe.from_bits(src_bits)
            dst = universe.from_bits(dst_bits)
            assert action_id in sag.step_actions(src, dst), (
                src_bits, action_id, dst_bits
            )

    def test_edge_count(self, sag):
        # The SAG definition admits 16 arcs; Figure 4 draws 14 of them
        # (A6 from 1100101 and A8 from 1101001 are valid but not drawn —
        # see EXPERIMENTS.md).
        assert sag.edge_count == 16

    def test_undrawn_but_valid_arcs(self, sag, universe):
        assert "A6" in sag.step_actions(
            universe.from_bits("1100101"), universe.from_bits("1101010")
        )
        assert "A8" in sag.step_actions(
            universe.from_bits("1101001"), universe.from_bits("1110010")
        )


class TestQueries:
    def test_steps_from(self, sag, universe):
        steps = sag.steps_from(universe.from_bits("0100101"))
        ids = {action.action_id for action, _ in steps}
        assert ids == {"A2", "A13", "A14", "A17"}

    def test_has_step(self, sag, universe):
        assert sag.has_step(
            universe.from_bits("0100101"), universe.from_bits("0101001")
        )
        assert not sag.has_step(
            universe.from_bits("1010010"), universe.from_bits("0100101")
        )

    def test_build_with_restricted_vertices(self, planner, universe):
        subset = [universe.from_bits("0100101"), universe.from_bits("0101001")]
        sag = SafeAdaptationGraph.build(planner.space, planner.actions, subset)
        assert sag.node_count == 2
        assert sag.edge_count == 1  # only A2 connects them


class TestDotExport:
    def test_dot_structure(self, sag, universe):
        dot = sag.to_dot(universe=universe)
        assert dot.startswith("digraph SAG")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == sag.edge_count
        assert 'n0100101 [label="0100101\\n{D1,D4,E1}"];' in dot
        assert 'label="A14 (150)"' in dot

    def test_dot_without_universe_uses_member_labels(self, sag):
        dot = sag.to_dot()
        assert '{D1,D4,E1}' in dot
        assert "n0100101" not in dot

    def test_dot_highlights_map(self, sag, planner, source, target, universe):
        plan = planner.plan(source, target)
        highlight = [
            (step.source, step.action.action_id, step.target)
            for step in plan.steps
        ]
        dot = sag.to_dot(universe=universe, highlight_path=highlight)
        assert dot.count(", color=red,") == len(plan.steps)
