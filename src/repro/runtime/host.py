"""Live agent host: one thread per adaptive process.

The threaded backend of the execution substrate.  All effect
interpretation and trace emission live in
:class:`repro.exec.runtime.AgentRuntime`; this module only adds the
thread wiring — a receive loop consuming control messages from the
in-memory transport, an RLock so app-thread callbacks (``local_safe``
from a worker) and queue-thread message handling never interleave
mid-effect, and real (scaled) wall-clock timers.  Blocking is the
runtime's ``running_event``, a :class:`threading.Event` the
application's workers wait on.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.core.model import ComponentUniverse
from repro.errors import RuntimeHostError
from repro.exec.app import AppAdapter
from repro.exec.runtime import AgentRuntime
from repro.exec.substrate import STOP, Clock, ThreadTimerService, WallClock
from repro.protocol.messages import Envelope
from repro.runtime.transport import InMemoryTransport
from repro.trace import Trace


class LiveApp(AppAdapter):
    """Application adapter for the threaded runtime.

    Compatibility alias of :class:`repro.exec.app.AppAdapter`; live apps
    may additionally use ``self.host.running_event`` to pause workers
    while the host is blocked.
    """

    host: "LiveAgentHost"


class LiveAgentHost(AgentRuntime):
    """One adaptive process: receive thread + agent machine + app."""

    def __init__(
        self,
        process_id: str,
        transport: InMemoryTransport,
        universe: ComponentUniverse,
        components: Iterable[str],
        app: Optional[AppAdapter] = None,
        trace: Optional[Trace] = None,
        clock: Optional[Clock] = None,
        manager_id: str = "manager",
        time_scale: float = 0.001,
    ):
        super().__init__(
            process_id,
            universe,
            components,
            clock=clock if clock is not None else WallClock(time_scale),
            transport=transport,
            timers=ThreadTimerService(time_scale),
            trace=trace if trace is not None else Trace(),
            app=app or LiveApp(),
            manager_id=manager_id,
            lock=threading.RLock(),
            error=RuntimeHostError,
        )
        self._queue = transport.register(process_id)
        self._thread = threading.Thread(
            target=self._receive_loop, name=f"agent-{process_id}", daemon=True
        )

    # -- lifecycle ----------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()
        self.app.start()

    def stop(self, timeout: float = 5.0) -> None:
        self.app.stop()
        self.timers.cancel_all()
        self.transport.stop_endpoint(self.process_id)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - shutdown hygiene
            raise RuntimeHostError(f"agent thread {self.process_id} did not stop")

    # -- inbound ---------------------------------------------------------------
    def _receive_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is STOP:
                return
            assert isinstance(item, Envelope)
            self.on_envelope(item)
