"""Cross-worker counter aggregation over a shared-memory block.

``repro serve --workers N`` forks N processes that each accept from one
listening socket; until now ``GET /v1/stats`` reported only whichever
worker happened to answer.  :class:`CounterBlock` fixes that with the
smallest possible mechanism: one ``multiprocessing.shared_memory``
segment laid out as ``workers x len(FIELDS)`` little-endian u64 slots.

Each worker is the **single writer** of its own row (whole-word writes
of monotonic counters — no locks needed; a torn read across fields can
at worst lag by one request, never corrupt), and any worker can sum the
column to answer a stats request for the whole fleet.  The parent
creates the block before forking and unlinks it at shutdown.
"""

from __future__ import annotations

import struct
from typing import Dict, Mapping, Optional

#: one u64 slot per field per worker, in this order
FIELDS = (
    "served",
    "fast_hits",
    "rejected_overload",
    "rejected_deadline",
    "specs",
    "warm_hits",
    "cold_plans",
    "lazy_plans",
    "verify_hits",
    "lint_hits",
    "evictions",
)

_SLOT = struct.Struct("<Q")
_ROW_BYTES = len(FIELDS) * _SLOT.size


class CounterBlock:
    """A ``workers x FIELDS`` grid of u64 counters in shared memory.

    Create in the parent (``CounterBlock(workers)``) before forking;
    each child publishes into its own row and aggregates by column.
    ``close()`` detaches; ``unlink()`` (parent only) frees the segment.
    """

    def __init__(
        self,
        workers: int,
        *,
        name: Optional[str] = None,
    ):
        from multiprocessing import shared_memory

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if name is None:
            self._shm = shared_memory.SharedMemory(
                create=True, size=workers * _ROW_BYTES
            )
            self._owner = True
        else:
            # Attach-side registration lands in the tracker the parent
            # already shares with its children (fork or preparation
            # data), where it is idempotent; the owner's unlink() is the
            # single cleanup point.
            self._shm = shared_memory.SharedMemory(name=name)
            self._owner = False

    @property
    def name(self) -> str:
        return self._shm.name

    def publish(self, index: int, counters: Mapping[str, int]) -> None:
        """Write *counters* into worker row *index* (unknown keys ignored)."""
        if not 0 <= index < self.workers:
            raise IndexError(f"worker index {index} out of range")
        base = index * _ROW_BYTES
        buf = self._shm.buf
        for field_index, field in enumerate(FIELDS):
            value = counters.get(field)
            if value is not None:
                _SLOT.pack_into(buf, base + field_index * _SLOT.size, value)

    def row(self, index: int) -> Dict[str, int]:
        """One worker's published row (mainly for tests)."""
        base = index * _ROW_BYTES
        buf = self._shm.buf
        return {
            field: _SLOT.unpack_from(buf, base + i * _SLOT.size)[0]
            for i, field in enumerate(FIELDS)
        }

    def aggregate(self) -> Dict[str, int]:
        """Column sums across every worker row, plus the worker count."""
        totals = {field: 0 for field in FIELDS}
        buf = self._shm.buf
        for index in range(self.workers):
            base = index * _ROW_BYTES
            for i, field in enumerate(FIELDS):
                totals[field] += _SLOT.unpack_from(buf, base + i * _SLOT.size)[0]
        totals["workers"] = self.workers
        return totals

    def close(self) -> None:
        self._shm.close()

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass

    def __enter__(self) -> "CounterBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
        self.unlink()
