"""Forward-error-correction filters (XOR parity).

The paper lists FEC among the MetaSocket filters ("filters can perform
encryption, decryption, forward error correction, compression, and so
forth").  We implement the classic (k, k+1) XOR scheme: every *k* data
packets the encoder emits one parity packet holding the XOR of their
payloads plus a replica of each member's header fields; the decoder can
then reconstruct any single missing member of a group *exactly* —
payload, sequence number, reassembly coordinates, checksum, and
encryption tags — masking one loss per group on a lossy channel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.codecs.packets import Packet
from repro.components.base import refraction
from repro.components.filters import Filter


def _xor_payloads(payloads: List[bytes]) -> bytes:
    width = max(len(p) for p in payloads)
    out = bytearray(width)
    for payload in payloads:
        for index, byte in enumerate(payload):
            out[index] ^= byte
    return bytes(out)


# A member's header replica inside a parity packet:
# (seq, frame_id, chunk_index, chunk_count, checksum, enc_scheme,
#  enc_nonce, compressed, payload_length)
MemberHeader = Tuple[int, int, int, int, int, Optional[str], int, bool, int]


def _header_of(packet: Packet) -> MemberHeader:
    return (
        packet.seq,
        packet.frame_id,
        packet.chunk_index,
        packet.chunk_count,
        packet.checksum,
        packet.enc_scheme,
        packet.enc_nonce,
        packet.compressed,
        len(packet.payload),
    )


def _packet_from_header(header: MemberHeader, payload: bytes) -> Packet:
    (seq, frame_id, chunk_index, chunk_count, checksum,
     enc_scheme, enc_nonce, compressed, length) = header
    return Packet(
        seq=seq,
        frame_id=frame_id,
        chunk_index=chunk_index,
        chunk_count=chunk_count,
        payload=payload[:length],
        checksum=checksum,
        enc_scheme=enc_scheme,
        enc_nonce=enc_nonce,
        compressed=compressed,
        recovered=True,
    )


class FecEncoderFilter(Filter):
    """Emit one XOR parity packet per *k* data packets."""

    def __init__(self, name: str, k: int = 4):
        super().__init__(name)
        if k < 2:
            raise ValueError("FEC group size must be >= 2")
        self.k = k
        self._group: List[Packet] = []
        self._group_id = 0
        self.parity_emitted = 0

    def process(self, packet: Packet) -> List[Packet]:
        if not packet.is_data:
            return [packet]
        self._group.append(packet)
        if len(self._group) < self.k:
            return [packet]
        members = tuple(p.seq for p in self._group)
        headers = tuple(_header_of(p) for p in self._group)
        parity = Packet(
            seq=-1_000_000 - self._group_id,  # parity packets have their own id space
            kind="parity",
            payload=_xor_payloads([p.payload for p in self._group]),
            group=self._group_id,
            members=members,
            member_headers=headers,
        )
        self._group = []
        self._group_id += 1
        self.parity_emitted += 1
        return [packet, parity]

    @refraction
    def fec_status(self) -> Dict[str, object]:
        return {"name": self.name, "k": self.k, "parity_emitted": self.parity_emitted}


class FecDecoderFilter(Filter):
    """Absorb parity packets; reconstruct a single missing group member.

    Keeps a sliding cache of recently seen data packets.  When a parity
    packet arrives with exactly one member missing, the member is rebuilt
    byte-exactly from the XOR of the present payloads and the replicated
    header, then emitted downstream as if it had arrived normally.
    """

    def __init__(self, name: str, cache_size: int = 256):
        super().__init__(name)
        self.cache_size = cache_size
        self._seen: Dict[int, Packet] = {}
        self._order: List[int] = []
        self.recovered = 0
        self.parity_consumed = 0

    def _remember(self, packet: Packet) -> None:
        if packet.seq in self._seen:
            return
        self._seen[packet.seq] = packet
        self._order.append(packet.seq)
        while len(self._order) > self.cache_size:
            evicted = self._order.pop(0)
            self._seen.pop(evicted, None)

    def process(self, packet: Packet) -> List[Packet]:
        if packet.is_data:
            self._remember(packet)
            return [packet]
        if not packet.is_parity:
            return [packet]
        self.parity_consumed += 1
        missing = [seq for seq in packet.members if seq not in self._seen]
        if len(missing) != 1 or not packet.member_headers:
            return []  # nothing to do (no loss, or unrecoverable multi-loss)
        present = [self._seen[seq] for seq in packet.members if seq in self._seen]
        payload = _xor_payloads([p.payload for p in present] + [packet.payload])
        header = next(
            h for h in packet.member_headers if h[0] == missing[0]
        )
        repaired = _packet_from_header(header, payload)
        self.recovered += 1
        self._remember(repaired)
        return [repaired]

    @refraction
    def fec_status(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cache": len(self._seen),
            "recovered": self.recovered,
            "parity_consumed": self.parity_consumed,
        }
