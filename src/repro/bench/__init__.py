"""Benchmark support: workload generators and table rendering."""

from repro.bench.workloads import (
    RandomSystem,
    random_system,
    replicated_video_system,
)
from repro.bench.tables import format_table

__all__ = [
    "RandomSystem",
    "random_system",
    "replicated_video_system",
    "format_table",
]
