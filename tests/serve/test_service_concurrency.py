"""PlanningService under concurrency: exact accounting, build-once specs."""

import threading

import pytest

import repro.serve.service as service_module
from repro.errors import NoSafePathError
from repro.manifest import loads
from repro.serve import PlanningService


@pytest.fixture
def spec(video_text):
    manifest = loads(video_text)
    source = manifest.resolve_configuration("source")
    target = manifest.resolve_configuration("target")
    return manifest, source, target


def hammer(threads, iterations, work):
    """Run *work(thread_index, iteration)* from *threads* workers."""
    barrier = threading.Barrier(threads)
    errors = []

    def body(index):
        barrier.wait()
        try:
            for iteration in range(iterations):
                work(index, iteration)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    workers = [
        threading.Thread(target=body, args=(i,)) for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert not errors, errors


class TestExactAccounting:
    THREADS = 8
    ITERATIONS = 50

    def test_every_request_is_warm_or_cold_and_cold_is_per_pair(self, spec):
        manifest, source, target = spec
        service = PlanningService()
        digest = service.register(
            manifest.universe, manifest.invariants, manifest.actions
        )
        pairs = [(source, target), (target, target), (source, source)]

        def work(index, iteration):
            a, b = pairs[(index + iteration) % len(pairs)]
            plan = service.plan_digest(digest, a, b)
            assert plan.source == a and plan.target == b

        hammer(self.THREADS, self.ITERATIONS, work)
        stats = service.stats()
        total = self.THREADS * self.ITERATIONS
        assert stats.warm_hits + stats.cold_plans == total
        assert stats.cold_plans == len(pairs)
        assert stats.lazy_plans == 0

    def test_unreachable_pairs_stay_exact_too(self, spec):
        manifest, source, target = spec
        service = PlanningService()
        digest = service.register(
            manifest.universe, manifest.invariants, manifest.actions
        )
        # target -> source is unreachable (actions are directed); the
        # planner caches the negative answer, so it costs one cold plan
        pairs = [(source, target), (target, source)]
        unreachable = []

        def work(index, iteration):
            a, b = pairs[(index + iteration) % len(pairs)]
            try:
                service.plan_digest(digest, a, b)
            except NoSafePathError:
                unreachable.append(1)

        hammer(self.THREADS, self.ITERATIONS, work)
        stats = service.stats()
        total = self.THREADS * self.ITERATIONS
        assert stats.warm_hits + stats.cold_plans == total
        assert stats.cold_plans == len(pairs)
        assert len(unreachable) == total // 2

    def test_stats_snapshot_is_consistent_mid_hammer(self, spec):
        manifest, source, target = spec
        service = PlanningService()
        digest = service.register(
            manifest.universe, manifest.invariants, manifest.actions
        )
        stop = threading.Event()
        snapshots = []

        def reader():
            while not stop.is_set():
                snapshots.append(service.stats())

        observer = threading.Thread(target=reader)
        observer.start()
        try:
            hammer(
                self.THREADS, self.ITERATIONS,
                lambda i, j: service.plan_digest(digest, source, target),
            )
        finally:
            stop.set()
            observer.join()
        total = self.THREADS * self.ITERATIONS
        assert service.stats().warm_hits + service.stats().cold_plans == total
        # served counts never decrease and never overshoot the total
        counts = [s.warm_hits + s.cold_plans for s in snapshots]
        assert counts == sorted(counts)
        assert all(count <= total for count in counts)


class TestBuildOnce:
    def test_concurrent_register_builds_the_planner_exactly_once(
        self, spec, monkeypatch
    ):
        manifest, _, _ = spec
        real_planner = service_module.AdaptationPlanner
        built = []

        class CountingPlanner(real_planner):
            def __init__(self, *args, **kwargs):
                built.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(
            service_module, "AdaptationPlanner", CountingPlanner
        )
        service = PlanningService()
        digests = []

        def work(index, iteration):
            digests.append(
                service.register(
                    manifest.universe, manifest.invariants, manifest.actions
                )
            )

        hammer(8, 5, work)
        assert len(built) == 1
        assert len(set(digests)) == 1
        assert service.stats().specs == 1

    def test_count_warm_hit_only_credits_live_specs(self, spec):
        manifest, _, _ = spec
        service = PlanningService()
        digest = service.register(
            manifest.universe, manifest.invariants, manifest.actions
        )
        assert service.count_warm_hit(digest) is True
        assert service.stats().warm_hits == 1
        service.evict(digest)
        assert service.count_warm_hit(digest) is False
