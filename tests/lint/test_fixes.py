"""The machine-applicable fix engine (``repro lint --fix``).

For every fixable code: the fix clears its own finding, and the result
is a fixed point — running :func:`fix_text` on its own output changes
nothing.  Plus the ``[conflicts]`` plumbing the SA6xx serialization fix
relies on: manifest round-trip and planner honoring declared pairs.
"""

import json

import pytest

from repro.core.collaborative import collaborative_sets
from repro.lint import (
    apply_edits,
    fix_text,
    lint_text,
    render_json,
    render_sarif,
    unified_diff,
)
from repro.lint.fixes import Edit
from repro.manifest import dumps, loads
from repro.span import Span


def codes_of(report, code):
    return [d for d in report if d.code == code]


def assert_fix_clears(text, code):
    """The contract every fixable code honors: clear + idempotent."""
    assert codes_of(lint_text(text), code), f"{code} did not fire"
    fixed, applied = fix_text(text)
    assert applied > 0
    assert not codes_of(lint_text(fixed), code), f"{code} survived --fix"
    again, more = fix_text(fixed)
    assert more == 0
    assert again == fixed
    return fixed


class TestApplyEdits:
    def test_column_splice(self):
        text = "alpha beta gamma\n"
        out = apply_edits(text, [Edit(Span(1, 7, 1, 12), "BETA ")])
        assert out == "alpha BETA gamma\n"

    def test_whole_line_deletion(self):
        text = "one\ntwo\nthree\n"
        out = apply_edits(text, [Edit(Span(2, 1, 2, 4), "")])
        assert out == "one\nthree\n"

    def test_end_of_file_insertion(self):
        text = "one\n"
        out = apply_edits(text, [Edit(Span(2, 1, 2, 1), "\n[conflicts]\np : a b\n")])
        assert out == "one\n\n[conflicts]\np : a b\n"

    def test_edits_apply_bottom_up(self):
        text = "aa\nbb\ncc\n"
        out = apply_edits(
            text,
            [Edit(Span(1, 1, 1, 3), ""), Edit(Span(3, 1, 3, 3), "")],
        )
        assert out == "bb\n"


class TestFixableCodes:
    def test_sa105_duplicate_component(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nA @ p1 : twice\n", "SA105"
        )
        assert fixed.count("A @ p1") == 1

    def test_sa106_duplicate_action(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p1\n"
            "[actions]\nswap : A -> B @ 5\nswap : A -> B @ 5\n",
            "SA106",
        )
        assert fixed.count("swap :") == 1

    def test_sa107_shadowed_configuration_keeps_the_winner(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p1\n"
            "[actions]\nswap : A -> B @ 5\nunswap : B -> A @ 5\n"
            "[configurations]\nstart = A\nstart = B\n",
            "SA107",
        )
        # the scanner keeps the later definition; the fix deletes the
        # shadowed first one, so the meaning is unchanged
        assert "start = B" in fixed
        assert "start = A" not in fixed

    def test_sa108_unused_component_bit_splice(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p1\nZ @ p1\n"
            "[actions]\nswap : A -> B @ 1\nunswap : B -> A @ 1\n"
            "[configurations]\nstart = 100\ngoal = 010\n",
            "SA108",
        )
        assert "Z @ p1" not in fixed
        # the Z bit is spliced out of every full-width bit vector
        assert "start = 10" in fixed
        assert "goal = 01" in fixed

    def test_sa301_dead_action(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nD @ p1\n"
            "[invariants]\nanchor : D\n"
            "[actions]\ndead : -D @ 2\nlive : +A @ 1\n"
            "[configurations]\nstart = A, D\n",
            "SA301",
        )
        assert "dead :" not in fixed

    def test_sa302_dominated_action(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p1\n"
            "[actions]\nswap : A -> B @ 5\nswap2 : A -> B @ 8\n"
            "[configurations]\nstart = A\n",
            "SA302",
        )
        assert "swap2" not in fixed

    def test_sa601_serializes_the_racing_pair(self):
        fixed = assert_fix_clears(
            "[components]\nFW @ edge\nCA @ core\n"
            "[invariants]\nguarded : CA -> FW\n"
            "[actions]\ndrop_fw : -FW @ 5\ndrop_cache : -CA @ 5\n"
            "[configurations]\nbaseline = FW, CA\n",
            "SA601",
        )
        assert "[conflicts]" in fixed
        assert "drop_cache_drop_fw : drop_cache drop_fw" in fixed

    def test_sa602_serializes_the_overlapping_pair(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p2\nC @ p3\n"
            "[actions]\nleft : A -> B @ 1\nright : B -> C @ 1\n"
            "[configurations]\nstart = A\n",
            "SA602",
        )
        assert "[conflicts]" in fixed

    def test_sa604_serializes_the_conflicting_pair(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p1\n"
            "[actions]\ngrow : +A @ 1\nmigrate : A -> B @ 1\n"
            "[configurations]\nstart = A\n",
            "SA604",
        )
        assert "grow_migrate : grow migrate" in fixed

    def test_sa606_deletes_the_dangling_conflicts_entry(self):
        fixed = assert_fix_clears(
            "[components]\nA @ p1\nB @ p1\n"
            "[actions]\nswap : A -> B @ 1\n"
            "[conflicts]\nghost : swap nosuch\n",
            "SA606",
        )
        assert "nosuch" not in fixed

    def test_defective_fixture_reaches_a_fixed_point(self):
        text = open(
            "tests/lint/fixtures/defective.manifest", encoding="utf-8"
        ).read()
        fixed, applied = fix_text(text)
        assert applied > 0
        again, more = fix_text(fixed)
        assert more == 0
        assert again == fixed
        # every fixable code is gone from the fixed text
        report = lint_text(fixed)
        for code in (
            "SA105", "SA106", "SA107", "SA108",
            "SA301", "SA302", "SA601", "SA602", "SA604", "SA606",
        ):
            assert not codes_of(report, code), f"{code} survived --fix"


class TestRenderedFixes:
    RACY = (
        "[components]\nA @ p1\nB @ p1\n"
        "[actions]\ngrow : +A @ 1\nmigrate : A -> B @ 1\n"
        "[configurations]\nstart = A\n"
    )

    def test_json_carries_fix_edits(self):
        report = lint_text(self.RACY, path="racy.manifest")
        payload = json.loads(render_json(report))
        [racy] = [d for d in payload["diagnostics"] if d["code"] == "SA604"]
        [fix] = racy["fixes"]
        assert "serialize" in fix["description"]
        assert fix["edits"][0]["replacement"].startswith("\n[conflicts]")

    def test_sarif_carries_fixes(self):
        report = lint_text(self.RACY, path="racy.manifest")
        document = json.loads(render_sarif(report))
        [run] = document["runs"]
        [racy] = [
            r for r in run["results"] if r["ruleId"] == "SA604"
        ]
        [fix] = racy["fixes"]
        [change] = fix["artifactChanges"]
        assert change["artifactLocation"]["uri"] == "racy.manifest"
        [replacement] = change["replacements"]
        assert replacement["insertedContent"]["text"].startswith(
            "\n[conflicts]"
        )

    def test_unified_diff_names_the_file(self):
        fixed, _ = fix_text(self.RACY)
        diff = unified_diff(self.RACY, fixed, path="racy.manifest")
        assert diff.startswith("--- racy.manifest")
        assert "+[conflicts]" in diff


class TestConflictsSection:
    TEXT = (
        "[components]\nA @ p1\nB @ p1\nC @ p2\n"
        "[actions]\ngrow : +A @ 1\nshift : B -> C @ 1\n"
        "[configurations]\nstart = A, B\n"
        "[conflicts]\nreviewed : grow shift\n"
    )

    def test_round_trips_through_dumps_and_loads(self):
        manifest = loads(self.TEXT)
        assert manifest.conflicts == (("grow", "shift"),)
        again = loads(dumps(manifest))
        assert again.conflicts == manifest.conflicts

    def test_strict_load_rejects_unknown_actions(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            loads(self.TEXT.replace("grow shift", "grow nosuch"))

    def test_planner_unions_the_pair_into_one_collaborative_set(self):
        manifest = loads(self.TEXT)
        merged = collaborative_sets(
            manifest.universe,
            manifest.invariants,
            manifest.actions,
            conflicts=manifest.conflicts,
        )
        assert frozenset({"A", "B", "C"}) in merged
        free = collaborative_sets(
            manifest.universe, manifest.invariants, manifest.actions
        )
        assert frozenset({"A"}) in free
        # the planner threads the declared pairs through to §7 planning
        assert manifest.planner().conflicts == manifest.conflicts
