"""ControlPlane.dispatch: typed operations, envelopes, CLI parity."""

import io
import json

from repro.cli import main
from repro.manifest import loads
from repro.serve import (
    ControlPlane,
    ErrorEnvelope,
    EvictSpecRequest,
    LintRequest,
    PlanBatchRequest,
    PlanRequest,
    RegisterSpecRequest,
    StatsRequest,
    TraceCheckRequest,
    VerifyPathsRequest,
    envelope,
    spec_digest,
    to_json,
    to_wire,
)
from tests.serve.conftest import STUCK_MANIFEST


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRegisterAndEvict:
    def test_register_returns_the_spec_digest(self, video_text):
        control = ControlPlane()
        result = control.dispatch(RegisterSpecRequest(manifest=video_text))
        manifest = loads(video_text)
        assert result.digest == spec_digest(
            manifest.universe, manifest.invariants, manifest.actions
        )
        assert result.components == 7
        assert result.configurations == ("source", "target")
        assert result.created is True

    def test_register_is_idempotent(self, video_text):
        control = ControlPlane()
        first = control.dispatch(RegisterSpecRequest(manifest=video_text))
        again = control.dispatch(RegisterSpecRequest(manifest=video_text))
        assert again.digest == first.digest
        assert again.created is False

    def test_bad_manifest_is_an_envelope_not_a_traceback(self):
        result = ControlPlane().dispatch(
            RegisterSpecRequest(manifest="[components\nbroken")
        )
        assert isinstance(result, ErrorEnvelope)
        assert result.code == "bad-manifest"
        assert "Traceback" not in result.message

    def test_evict_then_plan_is_unknown_spec(self, video_text):
        control = ControlPlane()
        digest = control.dispatch(
            RegisterSpecRequest(manifest=video_text)
        ).digest
        assert control.dispatch(EvictSpecRequest(spec=digest)).evicted is True
        assert control.dispatch(EvictSpecRequest(spec=digest)).evicted is False
        result = control.dispatch(
            PlanRequest(source="source", target="target", spec=digest)
        )
        assert isinstance(result, ErrorEnvelope)
        assert result.code == "unknown-spec"
        assert digest in result.message


class TestPlan:
    def test_plan_by_digest_equals_plan_by_manifest(self, video_text):
        control = ControlPlane()
        digest = control.dispatch(
            RegisterSpecRequest(manifest=video_text)
        ).digest
        by_digest = control.dispatch(
            PlanRequest(source="source", target="target", spec=digest)
        )
        by_manifest = control.dispatch(
            PlanRequest(source="source", target="target", manifest=video_text)
        )
        assert by_digest == by_manifest
        assert by_digest.plan.cost == 50.0
        assert by_digest.method == "dijkstra"

    def test_plan_describe_matches_the_planner_rendering(self, video_text):
        control = ControlPlane()
        result = control.dispatch(
            PlanRequest(source="source", target="target", manifest=video_text)
        )
        manifest = loads(video_text)
        direct = manifest.planner().plan(
            manifest.resolve_configuration("source"),
            manifest.resolve_configuration("target"),
        )
        assert result.plan.describe() == direct.describe()

    def test_unknown_configuration_envelope(self, video_text):
        result = ControlPlane().dispatch(
            PlanRequest(source="nope", target="target", manifest=video_text)
        )
        assert result.code == "unknown-configuration"

    def test_no_safe_path_envelope(self):
        result = ControlPlane().dispatch(
            PlanRequest(source="only_a", target="only_b",
                        manifest=STUCK_MANIFEST)
        )
        assert result.code == "no-safe-path"
        assert result.message == "no safe adaptation path from {A} to {B}"

    def test_unsafe_configuration_envelope(self, video_text):
        result = ControlPlane().dispatch(
            PlanRequest(source="source", target="0000000",
                        manifest=video_text)
        )
        assert result.code == "unsafe-configuration"

    def test_bad_method_and_spec_xor_manifest(self, video_text):
        control = ControlPlane()
        assert control.dispatch(
            PlanRequest(source="a", target="b", manifest=video_text,
                        method="magic")
        ).code == "bad-request"
        assert control.dispatch(
            PlanRequest(source="a", target="b")
        ).code == "bad-request"
        assert control.dispatch(
            PlanRequest(source="a", target="b", spec="x",
                        manifest=video_text)
        ).code == "bad-request"

    def test_alternates(self, video_text):
        result = ControlPlane().dispatch(
            PlanRequest(source="source", target="target",
                        manifest=video_text, k=3)
        )
        assert len(result.alternates) == 3
        assert result.alternates[0][1] == 50.0
        costs = [cost for _, cost in result.alternates]
        assert costs == sorted(costs)

    def test_internal_errors_carry_type_and_message_only(self, video_text):
        control = ControlPlane()

        def boom(*args, **kwargs):
            raise RuntimeError("boom")

        control.service.plan_digest = boom
        result = control.dispatch(
            PlanRequest(source="source", target="target", manifest=video_text)
        )
        assert result.code == "internal"
        assert result.message == "RuntimeError: boom"


class TestPlanBatch:
    def test_batch_preserves_order_and_counts(self, video_text):
        result = ControlPlane().dispatch(
            PlanBatchRequest(
                pairs=(("source", "target"), ("target", "target")),
                manifest=video_text,
            )
        )
        assert [item.reachable for item in result.results] == [True, True]
        assert result.results[0].cost == 50.0
        assert result.results[1].actions == ()
        assert result.reachable == 2

    def test_batch_stream_matches_batch_dispatch(self, video_text):
        control = ControlPlane()
        request = PlanBatchRequest(
            pairs=(("source", "target"), ("target", "source")),
            manifest=video_text,
        )
        batch = control.dispatch(request)
        lines = list(control.plan_batch_stream(request))
        assert lines[:-1] == [item.payload() for item in batch.results]
        assert lines[-1]["summary"]["reachable"] == batch.reachable

    def test_batch_stream_reports_fatal_errors(self):
        control = ControlPlane()
        lines = list(
            control.plan_batch_stream(
                PlanBatchRequest(pairs=(("a", "b"),), spec="nope")
            )
        )
        assert lines == [
            {"error": {"code": "unknown-spec",
                       "message": "unknown spec digest 'nope'"}}
        ]


class TestVerifyPaths:
    def test_named_property_holds(self, property_text):
        result = ControlPlane().dispatch(
            VerifyPathsRequest(
                source="source", target="target",
                property_name="encoder specified", manifest=property_text,
            )
        )
        assert result.holds is True
        assert result.mode == "eager"

    def test_inline_formula(self, property_text):
        result = ControlPlane().dispatch(
            VerifyPathsRequest(
                source="source", target="target",
                formula="historically({one_of(E1, E2)})",
                manifest=property_text,
            )
        )
        assert result.holds is True
        assert result.property_name is None

    def test_violated_property_carries_a_counterexample(self, property_text):
        result = ControlPlane().dispatch(
            VerifyPathsRequest(
                source="source", target="target", property_name="no_e2",
                manifest=property_text,
            )
        )
        assert result.holds is False
        assert result.counterexample is not None
        assert result.violation_index is not None

    def test_unknown_property_envelope(self, property_text):
        result = ControlPlane().dispatch(
            VerifyPathsRequest(
                source="source", target="target", property_name="nope",
                manifest=property_text,
            )
        )
        assert result.code == "unknown-property"
        assert "known:" in result.message

    def test_bad_formula_envelope(self, property_text):
        result = ControlPlane().dispatch(
            VerifyPathsRequest(
                source="source", target="target", formula="historically(",
                manifest=property_text,
            )
        )
        assert result.code == "bad-property"


class TestLint:
    def test_lint_rendering_matches_direct_render(self, video_text):
        from repro.lint import lint_text, render_json

        result = ControlPlane().dispatch(
            LintRequest(sources=((None, video_text),), format="json")
        )
        report = lint_text(video_text)
        report.sort()
        assert result.rendered == render_json(report)
        assert result.failed is False

    def test_lint_failure_gate(self):
        result = ControlPlane().dispatch(
            LintRequest(sources=((None, "[components]\n"),))
        )
        assert result.failed is True
        assert result.summary["errors"] >= 1


class TestTraceCheck:
    def _trace_text(self, video_path, tmp_path):
        trace = tmp_path / "run.jsonl"
        code, _ = run_cli(
            "simulate", video_path, "--from", "source", "--to", "target",
            "--save-trace", str(trace),
        )
        assert code == 0
        return trace.read_text(encoding="utf-8")

    def test_inline_trace_check(self, video_path, property_text, tmp_path):
        text = self._trace_text(video_path, tmp_path)
        result = ControlPlane().dispatch(
            TraceCheckRequest(trace=text, ltl="encoder specified",
                              manifest=property_text)
        )
        assert result.ok is True
        assert result.safety_ok is True
        assert result.commits == 6
        assert result.property_check.holds is True

    def test_malformed_trace_envelope(self, property_text):
        result = ControlPlane().dispatch(
            TraceCheckRequest(trace="not json\n", manifest=property_text)
        )
        assert result.code == "bad-trace"
        assert result.message.startswith("malformed trace")


class TestStats:
    def test_stats_reflect_traffic(self, video_text):
        control = ControlPlane()
        request = PlanRequest(source="source", target="target",
                              manifest=video_text)
        control.dispatch(request)
        control.dispatch(request)
        stats = control.dispatch(StatsRequest())
        assert stats.service["specs"] == 1
        assert stats.service["cold_plans"] == 1
        assert stats.service["warm_hits"] == 1
        (spec,) = stats.specs
        assert spec["configurations"] == ["source", "target"]
        assert spec["owned"] is True


class TestCLIDispatchParity:
    """Acceptance pin: CLI JSON output is a dispatch call, byte for byte."""

    def test_plan_json_equals_direct_dispatch(self, video_path, video_text):
        code, output = run_cli(
            "plan", video_path, "--from", "source", "--to", "target", "--json"
        )
        assert code == 0
        direct = ControlPlane().dispatch(
            PlanRequest(source="source", target="target",
                        manifest=video_text, method="auto", k=1)
        )
        assert output == to_json(direct) + "\n"

    def test_plan_json_error_parity(self, video_path, video_text):
        code, output = run_cli(
            "plan", video_path, "--from", "source", "--to", "nope", "--json"
        )
        assert code == 2
        direct = ControlPlane().dispatch(
            PlanRequest(source="source", target="nope", manifest=video_text)
        )
        assert isinstance(direct, ErrorEnvelope)
        assert output == to_json(direct) + "\n"

    def test_verify_paths_json_equals_direct_dispatch(
        self, property_path, property_text
    ):
        code, output = run_cli(
            "verify-paths", property_path, "--from", "source", "--to",
            "target", "--property", "encoder specified", "--json",
        )
        assert code == 0
        direct = ControlPlane().dispatch(
            VerifyPathsRequest(
                source="source", target="target",
                property_name="encoder specified", manifest=property_text,
            )
        )
        assert output == to_json(direct) + "\n"

    def test_trace_check_json_equals_direct_dispatch(
        self, video_path, property_path, property_text, tmp_path
    ):
        trace = tmp_path / "run.jsonl"
        code, _ = run_cli(
            "simulate", video_path, "--from", "source", "--to", "target",
            "--save-trace", str(trace),
        )
        assert code == 0
        code, output = run_cli(
            "trace", "check", str(trace), "--manifest", property_path,
            "--ltl", "encoder specified", "--json",
        )
        assert code == 0
        direct = ControlPlane().dispatch(
            TraceCheckRequest(trace_path=str(trace), ltl="encoder specified",
                              manifest=property_text)
        )
        assert output == to_json(direct) + "\n"

    def test_wire_bytes_are_the_compact_envelope(self, video_text):
        response = ControlPlane().dispatch(
            PlanRequest(source="source", target="target", manifest=video_text)
        )
        assert json.loads(to_wire(response)) == envelope(response)
        assert json.loads(to_json(response)) == envelope(response)
