"""Experiment T2 — Table 2: adaptive actions and corresponding cost.

Regenerates the full action table (operation notation, cost, description)
and benchmarks the applicability scan the SAG builder performs per
configuration.
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video.system import paper_source, video_actions, video_universe
from repro.bench import format_table

# (action, operation, cost ms) — Table 2 verbatim.
TABLE2 = [
    ("A1", "E1 -> E2", 10), ("A2", "D1 -> D2", 10), ("A3", "D1 -> D3", 10),
    ("A4", "D2 -> D3", 10), ("A5", "D4 -> D5", 10),
    ("A6", "(D1, E1) -> (D2, E2)", 100), ("A7", "(D1, E1) -> (D3, E2)", 100),
    ("A8", "(D2, E1) -> (D3, E2)", 100), ("A9", "(D4, E1) -> (D5, E2)", 100),
    ("A10", "(D1, D4) -> (D2, D5)", 50), ("A11", "(D1, D4) -> (D3, D5)", 50),
    ("A12", "(D2, D4) -> (D3, D5)", 50),
    ("A13", "(D1, D4, E1) -> (D2, D5, E2)", 150),
    ("A14", "(D1, D4, E1) -> (D3, D5, E2)", 150),
    ("A15", "(D2, D4, E1) -> (D3, D5, E2)", 150),
    ("A16", "-D4", 10), ("A17", "+D5", 10),
]


def regenerate_table2():
    return [
        (a.action_id, a.operation_text(), int(a.cost), a.description)
        for a in video_actions()
    ]


def test_table2_action_library(benchmark):
    rows = benchmark(regenerate_table2)
    assert [(r[0], r[1], r[2]) for r in rows] == TABLE2
    report(
        "Table 2 — adaptive actions and corresponding cost (regenerated)",
        format_table(["action", "operation", "cost (ms)", "description"], rows),
    )
    benchmark.extra_info["actions"] = len(rows)


def test_table2_cost_structure_shape(benchmark):
    """The cost model's shape: composites that force the server to drain
    (A6–A9 pairs, A13–A15 triples) cost ~10×/15× a single action."""
    actions = video_actions()

    def ratios():
        single = actions.get("A1").cost
        pair = actions.get("A6").cost
        triple = actions.get("A14").cost
        return single, pair, triple

    single, pair, triple = benchmark(ratios)
    assert pair / single == 10.0
    assert triple / single == 15.0


def test_applicability_scan(benchmark):
    """Per-configuration applicability filtering (the SAG inner loop)."""
    actions = video_actions()
    source = paper_source()
    applicable = benchmark(lambda: actions.applicable_to(source))
    assert {a.action_id for a in applicable} >= {"A2", "A13", "A14", "A17"}
