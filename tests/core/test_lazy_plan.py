"""Lazy frontier planning: ``lazy_plan`` must equal eager ``plan`` exactly.

The contract under test is stronger than "same cost": on every universe
where the eager CSR pipeline is defined, ``lazy_plan`` must return the
*identical* plan — same action ids in the same order, same cost, same
intermediate configurations — because both share one relax rule and one
tie-break, and the lazy path replays it under a proven cost bound.  The
suite also pins the cache semantics (write-through into ``_plan_cache``,
budget exhaustion never cached) and the stale-cache regression from the
PR-5 ``reset_caches`` contract.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.workloads import random_system, replicated_video_system
from repro.core.actions import AdaptiveAction
from repro.core.model import Configuration
from repro.core.planner import AdaptationPlanner
from repro.core.sag import LazySAG
from repro.core.space import LazySafeSpace, SafeConfigurationSpace
from repro.errors import NoSafePathError, UnsafeConfigurationError


def _planners(system):
    eager = AdaptationPlanner(system.universe, system.invariants, system.actions)
    lazy = AdaptationPlanner(system.universe, system.invariants, system.actions)
    return eager, lazy


def _assert_identical(eager_planner, lazy_planner, a, b):
    try:
        expected = eager_planner.plan(a, b)
    except NoSafePathError:
        with pytest.raises(NoSafePathError):
            lazy_planner.lazy_plan(a, b)
        return
    got = lazy_planner.lazy_plan(a, b)
    assert got.action_ids == expected.action_ids
    assert got.total_cost == expected.total_cost
    assert got.configurations == expected.configurations


class TestExactIdentity:
    def test_video_all_ordered_pairs(self, planner):
        """Every safe->safe ordered pair of the paper's video system."""
        system = replicated_video_system(1)
        eager, lazy = _planners(system)
        safe = eager.space.enumerate()
        assert len(safe) == 8
        for a in safe:
            for b in safe:
                _assert_identical(eager, lazy, a, b)
        # the whole point of the lazy path: no SAG was ever compiled
        assert lazy._sag is None
        assert lazy.space._cache is None

    @given(st.integers(min_value=0, max_value=400))
    @settings(max_examples=30, deadline=None)
    def test_random_systems(self, seed):
        system = random_system(seed, n_components=7, n_invariants=3, n_actions=10)
        eager, lazy = _planners(system)
        safe = eager.space.enumerate()[:12]
        for a in safe:
            for b in safe:
                _assert_identical(eager, lazy, a, b)

    def test_paper_map_cost(self, planner, source, target):
        plan = planner.lazy_plan(source, target)
        assert plan.total_cost == 50.0
        assert len(plan) == 5


class TestEndpoints:
    def test_unsafe_source_rejected(self, planner, target):
        with pytest.raises(UnsafeConfigurationError):
            planner.lazy_plan(Configuration(["E1"]), target)

    def test_unsafe_target_rejected(self, planner, source):
        with pytest.raises(UnsafeConfigurationError):
            planner.lazy_plan(source, Configuration(["E1"]))

    def test_trivial_self_plan(self, planner, source):
        plan = planner.lazy_plan(source, source)
        assert len(plan) == 0
        assert plan.total_cost == 0.0


class TestCacheSemantics:
    def test_write_through_into_plan_cache(self, planner, source, target):
        first = planner.lazy_plan(source, target)
        hit, cached = planner.peek_plan(source, target)
        assert hit and cached is first
        # eager plan() answers from the same cache without compiling a SAG
        assert planner.plan(source, target) is first
        assert planner._sag is None

    def test_unreachable_cached_as_none(self, planner, source, target):
        # the video SAG is one-way: the paper target cannot reach the source
        with pytest.raises(NoSafePathError):
            planner.lazy_plan(target, source)
        hit, cached = planner.peek_plan(target, source)
        assert hit and cached is None

    def test_budget_exhaustion_raises_and_is_not_cached(
        self, planner, source, target
    ):
        with pytest.raises(NoSafePathError):
            planner.lazy_plan(source, target, max_expansions=1)
        hit, _ = planner.peek_plan(source, target)
        assert not hit  # "ran out of budget" is not an unreachability verdict
        assert planner.lazy_plan(source, target).total_cost == 50.0

    def test_mutating_action_library_never_serves_stale_path(
        self, universe, invariants, actions, source, target
    ):
        """The PR-5 regression, replayed through the lazy path."""
        planner = AdaptationPlanner(universe, invariants, actions)
        before = planner.lazy_plan(source, target)
        assert before.total_cost == 50.0
        actions.add(
            AdaptiveAction(
                "A99",
                removes=source.members - target.members,
                adds=target.members - source.members,
                cost=1.0,
                description="atomic swap for the regression test",
            )
        )
        planner.reset_caches()
        after = planner.lazy_plan(source, target)
        assert after.action_ids == ("A99",)
        assert after.total_cost == 1.0
        # and the eager path agrees post-reset
        assert planner.plan(source, target).action_ids == ("A99",)


class TestLazySafeSpace:
    def test_counters_and_memo(self, universe, invariants):
        lazy = LazySafeSpace(universe, invariants)
        mask = universe.mask_of_names(["D2", "E1", "D4"])
        assert lazy.is_safe_mask(mask) is True
        assert lazy.is_safe_mask(mask) is True
        assert lazy.point_queries == 2
        assert lazy.memo_hits == 1
        assert lazy.safe_memo[mask] is True

    def test_agrees_with_eager_space(self, universe, invariants):
        eager = SafeConfigurationSpace(universe, invariants)
        lazy = LazySafeSpace(universe, invariants)
        for mask in range(2 ** len(universe)):
            assert lazy.is_safe_mask(mask) == eager.is_safe_mask(mask)

    def test_lazy_view_shares_memo(self, universe, invariants):
        eager = SafeConfigurationSpace(universe, invariants)
        view = eager.lazy_view()
        mask = universe.mask_of_names(["D2", "E1", "D4"])
        view.is_safe_mask(mask)
        assert eager.safe_memo[mask] is True

    def test_has_no_enumerate(self, universe, invariants):
        # the static guarantee: this type cannot run the 2^n sweep
        assert not hasattr(LazySafeSpace(universe, invariants), "enumerate")

    def test_require_safe_raises_with_explanation(self, universe, invariants):
        lazy = LazySafeSpace(universe, invariants)
        with pytest.raises(UnsafeConfigurationError):
            lazy.require_safe(Configuration(["E1"]), role="source")


class TestLazySAG:
    def test_arcs_match_eager_sag(self, planner, universe, invariants, actions):
        eager_sag = planner.sag
        lazy = LazySAG(LazySafeSpace(universe, invariants), actions)
        for config in planner.space.enumerate():
            mask = universe.mask_of(config)
            lazy_arcs = {
                (action_id, cost, nxt)
                for action_id, cost, nxt in lazy.successors(mask)
            }
            eager_arcs = {
                (action.action_id, action.cost, universe.mask_of(nxt))
                for action, nxt in eager_sag.steps_from(config)
            }
            assert lazy_arcs == eager_arcs

    def test_successor_cache(self, universe, invariants, actions):
        lazy = LazySAG(LazySafeSpace(universe, invariants), actions)
        mask = universe.mask_of_names(["D2", "E1", "D4"])
        first = lazy.successors(mask)
        assert lazy.successors(mask) is first  # cached, not recomputed
        assert lazy.expanded_nodes == 1


class TestBeyondTheBarrier:
    def test_35_component_local_plan_without_materialization(self):
        system = replicated_video_system(5)
        assert len(system.universe) == 35
        planner = AdaptationPlanner(
            system.universe, system.invariants, system.actions
        )
        local_target = Configuration(
            [m for m in system.source.members if "@g0" not in m]
            + [m for m in system.target.members if "@g0" in m]
        )
        plan = planner.lazy_plan(system.source, local_target)
        assert plan.total_cost == 50.0
        assert planner._sag is None
        assert planner.space._cache is None
