#!/usr/bin/env python
"""Scalability (§7): collaborative sets and lazy A* versus the full SAG.

The monolithic detection & setup phase enumerates the whole safe space
(8^n configurations for n replicated video groups) and runs Dijkstra on
the full SAG.  The paper's remedies — collaborative-set decomposition and
heuristic partial exploration — plan the same adaptations without ever
materializing that space.  This script measures all three.

Run:  python examples/collaborative_scaling.py
"""

import time

from repro.bench import format_table, replicated_video_system
from repro.core import collaborative_sets
from repro.core.planner import AdaptationPlanner


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, (time.perf_counter() - start) * 1000


def main() -> None:
    print("collaborative sets on the 3-group system:")
    system = replicated_video_system(3)
    groups = collaborative_sets(system.universe, system.invariants, system.actions)
    for group in groups:
        print(f"  {sorted(group)}")
    print()

    rows = []
    for n in (1, 2, 3):
        system = replicated_video_system(n)

        def monolithic():
            planner = AdaptationPlanner(
                system.universe, system.invariants, system.actions
            )
            plan = planner.plan(system.source, system.target)
            return plan.total_cost, planner.sag.node_count

        def lazy():
            planner = AdaptationPlanner(
                system.universe, system.invariants, system.actions
            )
            return planner.plan_lazy(system.source, system.target).total_cost

        def collaborative():
            planner = AdaptationPlanner(
                system.universe, system.invariants, system.actions
            )
            return planner.plan_collaborative(system.source, system.target).total_cost

        (mono_cost, nodes), mono_ms = timed(monolithic)
        lazy_cost, lazy_ms = timed(lazy)
        collab_cost, collab_ms = timed(collaborative)
        assert mono_cost == lazy_cost == collab_cost == 50.0 * n
        rows.append(
            (
                n,
                7 * n,
                nodes,
                f"{mono_ms:.1f}",
                f"{lazy_ms:.1f}",
                f"{collab_ms:.1f}",
            )
        )
    print(
        format_table(
            [
                "groups", "components", "SAG nodes",
                "full SAG+Dijkstra (ms)", "lazy A* (ms)", "collaborative (ms)",
            ],
            rows,
        )
    )
    print("\nAll three planners agree on the optimal cost (50 ms per group);")
    print("only the monolithic one pays the exponential safe-space bill.")


if __name__ == "__main__":
    main()
