"""Failure-handling policy (paper §4.4).

Two failure types are detected by manager-side timeouts:

* **loss-of-message** — coordination messages dropped by the network;
  transient loss is absorbed by retransmission, long-term loss trips the
  phase timeout;
* **fail-to-reset** — a process stuck in a long critical communication
  segment never reaches its safe state.

The recovery rule: failures *before* the first ``resume`` of a step abort
the step (rollback, no side effects leaked); failures *after* run the step
to completion (keep retransmitting resumes).  On a rolled-back step the
manager escalates through the paper's four options: (1) retry the same
step once, (2) try the next minimum adaptation path, (3) attempt to return
to the source configuration, (4) park and await user intervention.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ReplanKind(enum.Enum):
    """What the manager is asking the planner for after failures."""

    ALTERNATE_TO_TARGET = "alternate_to_target"
    RETURN_TO_SOURCE = "return_to_source"


@dataclass(frozen=True)
class FailurePolicy:
    """Timeout and retry parameters for the realization phase.

    Attributes:
        reset_timeout: max time from sending ``reset`` until all
            ``adapt done`` messages arrive (covers fail-to-reset; the paper
            detects both failures "by a time-out mechanism on the manager").
        resume_timeout: max time to collect ``resume done`` before
            re-sending resumes (run-to-completion never aborts, it retries).
        rollback_timeout: max time to collect ``rollback done``.
        retransmit_interval: re-send cadence for unanswered commands.
        max_retransmits: per-phase retransmission budget before the phase
            is declared failed (pre-resume) — after a resume was sent the
            budget is ``max_post_resume_retransmits``, a large safety valve
            so a fully partitioned network cannot hang the manager forever.
        step_retries: how many times the same step is retried after a
            rollback before escalating to an alternate path (the paper
            "first retries the same step once more").
        max_alternate_plans: how many alternate paths to request before
            falling back to returning to the source configuration.
    """

    reset_timeout: float = 200.0
    resume_timeout: float = 100.0
    rollback_timeout: float = 100.0
    retransmit_interval: float = 25.0
    max_retransmits: int = 4
    max_post_resume_retransmits: int = 64
    step_retries: int = 1
    max_alternate_plans: int = 4

    def __post_init__(self):
        for name in (
            "reset_timeout",
            "resume_timeout",
            "rollback_timeout",
            "retransmit_interval",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in (
            "max_retransmits",
            "max_post_resume_retransmits",
            "step_retries",
            "max_alternate_plans",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
