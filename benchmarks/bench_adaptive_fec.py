"""Experiment A4 — adaptable FEC: loss resilience as a safe adaptation.

MetaSocket filters include forward error correction (§2).  This bench
measures what safely inserting the FEC triple buys on a lossy data plane,
and that the insertion itself is a clean two-state adaptation (the FEC
all-or-nothing invariants make the extended safe space exactly 16 = 8×2).
"""

import pytest

from benchmarks.conftest import report
from repro.apps.video.extended import extended_planner, extended_source
from repro.apps.video.scenario import VideoScenario, build_video_cluster
from repro.bench import format_table
from repro.sim.net import BernoulliLoss

LOSS_RATES = (0.05, 0.10, 0.15, 0.20)


def delivery_ratio(loss, with_fec, seed=5, horizon=400.0):
    cluster = build_video_cluster(
        seed=seed,
        extended=True,
        initial=extended_source(with_fec=with_fec),
        data_loss=BernoulliLoss(loss),
    )
    scenario = VideoScenario(cluster=cluster)
    cluster.sim.run(until=horizon)
    stats = scenario.stream_stats()
    assert stats["handheld_corrupt"] == 0 and stats["laptop_corrupt"] == 0
    return stats["handheld_received"] / stats["packets_sent"]


@pytest.mark.parametrize("loss", LOSS_RATES)
def test_fec_recovers_losses(benchmark, loss):
    without, with_fec = benchmark.pedantic(
        lambda: (delivery_ratio(loss, False), delivery_ratio(loss, True)),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["loss"] = loss
    benchmark.extra_info["delivery_without_fec"] = round(without, 3)
    benchmark.extra_info["delivery_with_fec"] = round(with_fec, 3)
    assert with_fec > without


def test_fec_sweep_table(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            (f"{loss:.0%}",
             round(delivery_ratio(loss, False), 3),
             round(delivery_ratio(loss, True), 3))
            for loss in LOSS_RATES
        ],
        rounds=1, iterations=1,
    )
    report(
        "adaptive FEC: handheld delivery ratio vs data-plane loss",
        format_table(["loss", "without FEC", "with FEC"], rows),
    )
    # shape: FEC recovers the single-loss-per-group cases, so the gap
    # is material at every rate and delivery stays high at moderate loss
    for _, without, with_fec in rows:
        assert with_fec - without > 0.03
    assert rows[1][2] > 0.93  # ~95% delivered at 10% loss with (4,5) FEC


def test_fec_insertion_cost(benchmark):
    """The adaptation that buys the resilience: one safe triple insert."""

    def run():
        cluster = build_video_cluster(
            seed=7, extended=True, data_loss=BernoulliLoss(0.15)
        )
        scenario = VideoScenario(cluster=cluster)
        cluster.sim.run(until=100.0)
        outcome = cluster.adapt_to(extended_source(with_fec=True))
        cluster.sim.run(until=cluster.sim.now + 100.0)
        scenario.safety_report().raise_if_unsafe()
        return outcome

    outcome = benchmark(run)
    assert outcome.succeeded
    assert outcome.steps_committed == 1
    benchmark.extra_info["insertion_ms"] = outcome.duration


def test_extended_safe_space(benchmark):
    planner = benchmark.pedantic(extended_planner, rounds=1, iterations=1)
    assert planner.space.count() == 16
