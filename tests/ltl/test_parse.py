"""The ``[properties]`` text syntax: parse, render, round-trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ParseError
from repro.expr.ast import Atom, OneOf
from repro.ltl import (
    Historically,
    Once,
    PAnd,
    PImplies,
    PNot,
    POr,
    Previously,
    Prop,
    Since,
    StateProp,
    parse_property,
    property_to_text,
)


class TestGrammar:
    def test_atoms_and_booleans(self):
        formula = parse_property("a & !b | c")
        # '&' binds tighter than '|'
        assert isinstance(formula, POr)
        assert isinstance(formula.left, PAnd)
        assert isinstance(formula.left.right, PNot)

    def test_implies_is_right_associative(self):
        formula = parse_property("a -> b -> c")
        assert isinstance(formula, PImplies)
        assert isinstance(formula.right, PImplies)
        assert formula.left.name == "a"

    def test_temporal_operators(self):
        assert isinstance(parse_property("historically(a)"), Historically)
        assert isinstance(parse_property("once(a)"), Once)
        assert isinstance(parse_property("previously(a)"), Previously)
        assert isinstance(parse_property("prev(a)"), Previously)
        since = parse_property("since(a, b)")
        assert isinstance(since, Since)
        assert since.left.name == "a" and since.right.name == "b"

    def test_keywords_only_before_parenthesis(self):
        # components named like the operators stay usable as atoms
        formula = parse_property("once & since")
        assert isinstance(formula, PAnd)
        assert formula.left.name == "once"
        assert formula.right.name == "since"

    def test_state_expression_atom(self):
        formula = parse_property("historically({one_of(D1, D2, D3)})")
        assert isinstance(formula.operand, StateProp)
        assert isinstance(formula.operand.expr, OneOf)
        assert formula.atoms() == {"D1", "D2", "D3"}

    def test_atoms_mixes_props_and_state_exprs(self):
        formula = parse_property("a -> {b & c}")
        assert formula.atoms() == {"a", "b", "c"}

    def test_parentheses_override_precedence(self):
        formula = parse_property("a & (b | c)")
        assert isinstance(formula, PAnd)
        assert isinstance(formula.right, POr)


class TestParseErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "a &",
            "& a",
            "historically(a",
            "since(a)",
            "a b",
            "{a",
            "a}",
            "{ }",
            "{one_of(}",
            "a # b",
        ],
    )
    def test_bad_input_raises_parse_error(self, text):
        with pytest.raises(ParseError):
            parse_property(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_property("a & & b")
        assert excinfo.value.position == 4


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "!a",
            "a & b & c",
            "a | b & c",
            "(a | b) & c",
            "a -> b -> c",
            "(a -> b) -> c",
            "historically(!U)",
            "once({one_of(B1, B2)})",
            "since(a & b, !c)",
            "historically({E1} -> !once({E2}))",
        ],
    )
    def test_round_trip_is_structural(self, text):
        rendered = property_to_text(parse_property(text))
        assert property_to_text(parse_property(rendered)) == rendered

    def test_right_nested_conjunction_needs_parens(self):
        # a & (b & c) must not re-parse as the left-nested (a & b) & c
        formula = PAnd(Prop("a"), PAnd(Prop("b"), Prop("c")))
        rendered = property_to_text(formula)
        assert rendered == "a & (b & c)"
        assert repr(parse_property(rendered)) == repr(formula)


@st.composite
def formulas(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return Prop(draw(st.sampled_from(["a", "b", "c"])))
        return StateProp(OneOf((Atom("a"), Atom(draw(st.sampled_from(["b", "c"]))))))
    kind = draw(
        st.sampled_from(
            ["not", "and", "or", "implies", "prev", "once", "hist", "since"]
        )
    )
    unary = {"not": PNot, "prev": Previously, "once": Once, "hist": Historically}
    if kind in unary:
        return unary[kind](draw(formulas(depth=depth - 1)))
    left = draw(formulas(depth=depth - 1))
    right = draw(formulas(depth=depth - 1))
    return {"and": PAnd, "or": POr, "implies": PImplies, "since": Since}[kind](
        left, right
    )


@given(formulas())
@settings(max_examples=200, deadline=None)
def test_random_formulas_round_trip(formula):
    rendered = property_to_text(formula)
    assert repr(parse_property(rendered)) == repr(formula)
