#!/usr/bin/env python
"""The paper's §5 case study, end to end: harden video encryption at run time.

Reproduces, in one run:

* Table 1 — the safe configuration set;
* Table 2 — the adaptive action library;
* Figure 4 — the Safe Adaptation Graph and the 50 ms Minimum Adaptation Path;
* §5.2 — the five-step realization against a live multicast video stream,
  with zero corrupted frames;
* the counterfactual: the same reconfiguration as a naive hot swap,
  corrupting in-flight packets and failing the safety checker.

Run:  python examples/video_hardening.py
"""

from repro.apps.video import VideoScenario
from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_planner,
)
from repro.baselines import UnsafeSwap
from repro.bench import format_table


def show_tables() -> None:
    planner = video_planner()
    print("Table 1 — safe configuration set")
    print(format_table(["bit vector", "configuration"], planner.space.to_table()))
    print()
    print("Table 2 — adaptive actions and corresponding cost")
    print(
        format_table(
            ["action", "operation", "cost (ms)", "description"],
            [
                (a.action_id, a.operation_text(), int(a.cost), a.description)
                for a in planner.actions
            ],
        )
    )
    print()
    print(f"Figure 4 — SAG: {planner.sag.node_count} safe configurations, "
          f"{planner.sag.edge_count} adaptation steps")
    plan = planner.plan(paper_source(), paper_target())
    print(plan.describe())
    print()


def run_safe() -> None:
    print("§5.2 — safe realization against the live stream")
    scenario = VideoScenario(seed=1)
    outcome = scenario.run()
    stats = scenario.stream_stats()
    print(f"  adaptation: {outcome.status} in {outcome.duration:g} ms "
          f"({outcome.steps_committed} steps)")
    print(f"  frames sent: {stats['frames_sent']}, "
          f"handheld ok/corrupt: {stats['handheld_ok']}/{stats['handheld_corrupt']}, "
          f"laptop ok/corrupt: {stats['laptop_ok']}/{stats['laptop_corrupt']}")
    print(f"  safety: {scenario.safety_report().summary()}")
    print()


def run_unsafe() -> None:
    print("counterfactual — the same change as a naive hot swap")
    scenario = VideoScenario(seed=1)
    UnsafeSwap(scenario.cluster, paper_target(), at_time=50.0).schedule()
    scenario.cluster.sim.run(until=150.0)
    stats = scenario.stream_stats()
    report = scenario.safety_report()
    print(f"  handheld corrupt packets: {stats['handheld_corrupt']}, "
          f"laptop corrupt packets: {stats['laptop_corrupt']}")
    print(f"  safety: {report.summary()}")
    for violation in report.violations[:4]:
        print(f"    [{violation.kind} @ t={violation.time:g}] {violation.detail}")
    if len(report.violations) > 4:
        print(f"    ... and {len(report.violations) - 4} more")


def main() -> None:
    show_tables()
    run_safe()
    run_unsafe()


if __name__ == "__main__":
    main()
