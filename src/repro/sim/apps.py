"""Synthetic process applications for protocol tests and benchmarks.

These adapters exercise the protocol without a real application on top:

* :class:`QuiescentApp` — reaches its local safe state after a
  configurable delay (models finishing the current critical communication
  segment);
* :class:`StuckApp` — never reaches the safe state (the paper's
  *fail-to-reset* failure: "the local process may be engaged in a long
  critical communication segment"), optionally only for the first *n*
  attempts so retries can succeed.
"""

from __future__ import annotations

from typing import Optional

from repro.exec.app import QuiescentAdapter
from repro.sim.cluster import ProcessApp
from repro.sim.kernel import TimerHandle


class QuiescentApp(QuiescentAdapter):
    """Reaches the local safe state ``quiesce_delay`` after each reset.

    Thin alias of the backend-portable
    :class:`repro.exec.app.QuiescentAdapter` (the delay runs on the
    host's timer service, so on the simulator it is simulated ticks).
    """


class MonitoredApp(ProcessApp):
    """Local safe state derived automatically from a temporal monitor (§7).

    Instead of a fixed quiesce delay, the app feeds its workload events to
    a :class:`repro.ltl.SafeStateMonitor`; when a reset is pending and an
    observation lands in a safe state, the agent is notified.  This is the
    paper's future-work proposal ("the formula can then be dynamically
    evaluated ... the state can be automatically identified as a safe
    state") realized against the simulator.
    """

    def __init__(self, monitor):
        self.monitor = monitor
        self._pending_step: Optional[str] = None
        monitor.on_safe(self._maybe_release)

    def observe(self, *events: str) -> None:
        """Feed workload events (e.g. segment begin/end) to the monitor."""
        self.monitor.observe(*events)

    def _maybe_release(self) -> None:
        if self._pending_step is not None:
            step_key, self._pending_step = self._pending_step, None
            self.host.local_safe(step_key)

    def begin_reset(self, step_key, action, inject_flush, await_flush) -> None:
        if self.monitor.safe:
            self.host.sim.call_soon(lambda: self.host.local_safe(step_key))
        else:
            self._pending_step = step_key

    def abort_reset(self, step_key) -> None:
        if self._pending_step == step_key:
            self._pending_step = None


class StuckApp(ProcessApp):
    """Fail-to-reset injection: never (or not initially) reaches safety.

    Args:
        stuck_attempts: how many reset attempts to ignore before behaving
            like a quiescent app.  ``None`` means stuck forever.
        quiesce_delay: delay used once un-stuck.
    """

    def __init__(self, stuck_attempts: Optional[int] = None, quiesce_delay: float = 2.0):
        self.stuck_attempts = stuck_attempts
        self.quiesce_delay = quiesce_delay
        self.attempts_seen = 0
        self._pending: Optional[TimerHandle] = None

    def begin_reset(self, step_key, action, inject_flush, await_flush) -> None:
        self.attempts_seen += 1
        if self.stuck_attempts is None or self.attempts_seen <= self.stuck_attempts:
            return  # silently stay busy: the manager's timeout will fire
        host = self.host
        self._pending = host.sim.schedule(
            self.quiesce_delay, lambda: host.local_safe(step_key)
        )

    def abort_reset(self, step_key) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
