"""Compression filters (zlib) for MetaSocket chains.

Order matters relative to encryption: compression must run *before*
encryption on the send side (ciphertext does not compress) and after
decryption on the receive side; the filters refuse to compress
already-encrypted payloads rather than silently wasting work.
"""

from __future__ import annotations

import zlib
from typing import Dict, List

from repro.codecs.packets import Packet
from repro.components.base import refraction
from repro.components.filters import Filter


class CompressFilter(Filter):
    """Deflate data-packet payloads."""

    def __init__(self, name: str, level: int = 6):
        super().__init__(name)
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in 0..9")
        self.level = level
        self.bytes_in = 0
        self.bytes_out = 0

    def process(self, packet: Packet) -> List[Packet]:
        if not packet.is_data or packet.compressed or packet.enc_scheme is not None:
            return [packet]
        compressed = zlib.compress(packet.payload, self.level)
        self.bytes_in += len(packet.payload)
        self.bytes_out += len(compressed)
        return [packet.with_payload(compressed, compressed=True)]

    @refraction
    def compression_status(self) -> Dict[str, object]:
        ratio = (self.bytes_out / self.bytes_in) if self.bytes_in else 1.0
        return {"name": self.name, "ratio": ratio, "bytes_in": self.bytes_in}


class DecompressFilter(Filter):
    """Inflate payloads compressed by :class:`CompressFilter`.

    Bypasses packets that are not compressed or are still encrypted
    (decryption must happen first), mirroring the decoder bypass rule.
    """

    def __init__(self, name: str):
        super().__init__(name)
        self.packets_inflated = 0
        self.packets_bypassed = 0

    def process(self, packet: Packet) -> List[Packet]:
        if not packet.is_data or not packet.compressed or packet.enc_scheme is not None:
            self.packets_bypassed += 1
            return [packet]
        self.packets_inflated += 1
        return [packet.with_payload(zlib.decompress(packet.payload), compressed=False)]

    @refraction
    def decompression_status(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "inflated": self.packets_inflated,
            "bypassed": self.packets_bypassed,
        }
