"""Persistent pool registry, plane cache, and the counter block."""

import pytest

import repro.parallel as par
from repro.parallel.counters import FIELDS, CounterBlock


# -- pool registry -------------------------------------------------------------


def test_acquire_pool_is_persistent_and_reused():
    par.shutdown_pools()
    pool, spun_up = par.acquire_pool(2)
    try:
        assert spun_up
        again, spun_up_again = par.acquire_pool(2)
        assert again is pool
        assert not spun_up_again
        assert par.pool_stats()["alive"] == 1
        # the pool actually works
        assert pool.submit(int, 7).result() == 7
    finally:
        par.shutdown_pools()
    assert par.pool_stats()["alive"] == 0


def test_shutdown_then_acquire_spins_up_fresh():
    par.shutdown_pools()
    _, first = par.acquire_pool(2)
    par.shutdown_pools()
    _, second = par.acquire_pool(2)
    assert first and second
    par.shutdown_pools()


def test_spec_digest_is_stable_and_short():
    a = par.spec_digest(b"payload")
    assert a == par.spec_digest(b"payload")
    assert a != par.spec_digest(b"other")
    assert len(a) == 16


# -- plane cache ---------------------------------------------------------------


def test_plane_cache_store_and_clear():
    par.clear_result_caches()
    assert par.cached_plane("deadbeef") is None
    par.store_plane("deadbeef", b"\x01\x02")
    assert par.cached_plane("deadbeef") == b"\x01\x02"
    par.clear_result_caches()
    assert par.cached_plane("deadbeef") is None


def test_plane_cache_is_lru_bounded():
    from repro.parallel import pool as pool_mod

    par.clear_result_caches()
    for i in range(pool_mod.MAX_PLANE_CACHE + 3):
        par.store_plane(f"digest-{i}", bytes([i]))
    assert par.cached_plane("digest-0") is None  # evicted
    assert par.cached_plane(f"digest-{pool_mod.MAX_PLANE_CACHE + 2}") is not None
    par.clear_result_caches()


# -- shared-memory counter block ----------------------------------------------


def test_counter_block_publish_row_aggregate():
    with CounterBlock(3) as block:
        block.publish(0, {"served": 5, "specs": 2})
        block.publish(2, {"served": 7, "lint_hits": 1})
        assert block.row(0)["served"] == 5
        assert block.row(1)["served"] == 0
        totals = block.aggregate()
        assert totals["served"] == 12
        assert totals["specs"] == 2
        assert totals["lint_hits"] == 1
        assert totals["workers"] == 3
        assert set(FIELDS) <= set(totals)


def test_counter_block_republish_overwrites_row():
    with CounterBlock(1) as block:
        block.publish(0, {"served": 5})
        block.publish(0, {"served": 6})
        assert block.aggregate()["served"] == 6


def test_counter_block_attach_by_name_sees_owner_writes():
    with CounterBlock(2) as owner:
        peer = CounterBlock(2, name=owner.name)
        try:
            owner.publish(0, {"served": 3})
            peer.publish(1, {"served": 4})
            assert peer.aggregate()["served"] == 7
            assert owner.aggregate()["served"] == 7
        finally:
            peer.close()


def test_counter_block_rejects_bad_row_index():
    with CounterBlock(1) as block:
        with pytest.raises(IndexError):
            block.publish(1, {"served": 1})


def test_counter_block_ignores_unknown_fields():
    with CounterBlock(1) as block:
        block.publish(0, {"served": 1, "not_a_field": 99})
        assert "not_a_field" not in block.aggregate()
