"""Unit tests for encoder/decoder filters (E1/E2, D1–D5 semantics)."""

import pytest

from repro.apps.video.system import make_decoder, make_encoder
from repro.codecs.crypto_filters import DecoderFilter, EncoderFilter
from repro.codecs.packets import data_packet, marker_packet


def packet(payload=b"payload", seq=1):
    return data_packet(seq, 0, 0, 1, payload)


class TestEncoder:
    def test_encrypts_and_tags(self):
        encoder = EncoderFilter("E1", "des64")
        (out,) = encoder.process(packet())
        assert out.enc_scheme == "des64"
        assert out.payload != b"payload"
        assert not out.verify()  # encrypted payload no longer matches checksum
        assert encoder.packets_encoded == 1

    def test_markers_pass_through(self):
        encoder = EncoderFilter("E1", "des64")
        marker = marker_packet(1, "k")
        assert encoder.process(marker) == [marker]

    def test_already_encrypted_passes_through(self):
        e1 = EncoderFilter("E1", "des64")
        e2 = EncoderFilter("E2", "des128")
        (once,) = e1.process(packet())
        (twice,) = e2.process(once)
        assert twice is once
        assert e2.packets_skipped == 1

    def test_status_refraction(self):
        encoder = EncoderFilter("E1", "des64")
        encoder.process(packet())
        assert encoder.refract("encoder_status")["encoded"] == 1


class TestDecoder:
    def test_matching_scheme_decodes(self):
        (enc,) = EncoderFilter("E1", "des64").process(packet())
        decoder = DecoderFilter("D1", ["des64"])
        (out,) = decoder.process(enc)
        assert out.enc_scheme is None
        assert out.payload == b"payload"
        assert out.verify()
        assert decoder.packets_decoded == 1

    def test_bypass_rule(self):
        (enc,) = EncoderFilter("E2", "des128").process(packet())
        decoder = DecoderFilter("D1", ["des64"])
        (out,) = decoder.process(enc)
        assert out is enc  # forwarded untouched, still encrypted
        assert decoder.packets_bypassed == 1

    def test_plaintext_bypassed(self):
        decoder = DecoderFilter("D1", ["des64"])
        p = packet()
        assert decoder.process(p) == [p]

    def test_compat_decoder_handles_both(self):
        d2 = DecoderFilter("D2", ["des64", "des128"])
        for scheme, encoder_name in (("des64", "E1"), ("des128", "E2")):
            (enc,) = EncoderFilter(encoder_name, scheme).process(packet())
            (out,) = d2.process(enc)
            assert out.verify(), scheme
        assert d2.packets_decoded == 2

    def test_on_decode_observer(self):
        seen = []
        decoder = DecoderFilter("D1", ["des64"], on_decode=seen.append)
        (enc,) = EncoderFilter("E1", "des64").process(packet())
        decoder.process(enc)
        assert len(seen) == 1 and seen[0].verify()

    def test_needs_schemes(self):
        with pytest.raises(ValueError):
            DecoderFilter("D0", [])


class TestPaperComponentFactories:
    @pytest.mark.parametrize(
        "decoder,encoder,should_decode",
        [
            ("D1", "E1", True), ("D1", "E2", False),
            ("D2", "E1", True), ("D2", "E2", True),
            ("D3", "E1", False), ("D3", "E2", True),
            ("D4", "E1", True), ("D4", "E2", False),
            ("D5", "E1", False), ("D5", "E2", True),
        ],
    )
    def test_compatibility_matrix(self, decoder, encoder, should_decode):
        (enc,) = make_encoder(encoder).process(packet())
        (out,) = make_decoder(decoder).process(enc)
        assert out.verify() == should_decode

    def test_unknown_names_rejected(self):
        with pytest.raises(KeyError):
            make_encoder("D1")
        with pytest.raises(KeyError):
            make_decoder("E1")

    def test_chain_d4_d5_decodes_both_schemes(self):
        """The laptop's transitional chain [D4, D5] handles both streams."""
        from repro.components.filters import FilterChain

        chain = FilterChain("laptop", [make_decoder("D4"), make_decoder("D5")])
        for encoder_name in ("E1", "E2"):
            (enc,) = make_encoder(encoder_name).process(packet())
            (out,) = chain.push(enc)
            assert out.verify(), encoder_name
