"""Unit tests for the scheme registry + crypto property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.schemes import (
    DES128,
    DES64,
    Scheme,
    cipher_for,
    get_scheme,
    register_scheme,
    registered_schemes,
)


class TestRegistry:
    def test_builtin_schemes(self):
        assert "des64" in registered_schemes()
        assert "des128" in registered_schemes()
        assert get_scheme("des64") is DES64
        assert len(DES128.key) == 16

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            get_scheme("rot13")

    def test_cipher_for_cached(self):
        assert cipher_for("des64") is cipher_for("des64")

    def test_schemes_produce_different_ciphertext(self):
        a = cipher_for("des64").encrypt(b"data", nonce=1)
        b = cipher_for("des128").encrypt(b"data", nonce=1)
        assert a != b

    def test_register_idempotent_for_same_scheme(self):
        register_scheme(DES64)  # no error

    def test_register_conflict_rejected(self):
        with pytest.raises(ValueError):
            register_scheme(Scheme("des64", key=b"different"))

    def test_scheme_validation(self):
        with pytest.raises(ValueError):
            Scheme("", b"key")
        with pytest.raises(ValueError):
            Scheme("x", b"")


class TestCryptoProperties:
    @given(data=st.binary(max_size=200), nonce=st.integers(min_value=0, max_value=2**32))
    def test_round_trip_des64(self, data, nonce):
        cipher = cipher_for("des64")
        assert cipher.decrypt(cipher.encrypt(data, nonce), nonce) == data

    @given(data=st.binary(max_size=200), nonce=st.integers(min_value=0, max_value=2**32))
    def test_round_trip_des128(self, data, nonce):
        cipher = cipher_for("des128")
        assert cipher.decrypt(cipher.encrypt(data, nonce), nonce) == data

    @given(data=st.binary(min_size=1, max_size=64))
    def test_ciphertext_differs_from_plaintext(self, data):
        ct = cipher_for("des64").encrypt(data, nonce=0)
        assert ct != data
        assert len(ct) % 8 == 0
        assert len(ct) >= len(data)
