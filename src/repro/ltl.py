"""Past-time LTL runtime monitoring — the paper's §7 future work, built.

    "One promising approach is to use a temporal logic formula to specify
    the set of critical communication segments of a component.  The
    run-time component states can be monitored and the formula can then be
    dynamically evaluated.  If all the obligations of the formula are
    fulfilled in a state, then the state can be automatically identified
    as a safe state."

We implement exactly that: a small past-time LTL (ptLTL) over event
propositions, evaluated *incrementally* in O(formula) per event (the
standard recursive-update construction), plus a
:class:`SafeStateMonitor` that watches a process's event stream and
reports when the formula holds — the automatically derived local safe
state.

Operators:

* ``Prop(name)`` — true in a step iff the step's event set contains name;
* boolean ``PNot`` / ``PAnd`` / ``POr`` / ``PImplies``;
* ``Previously(f)`` — f held in the previous step (⊙, "yesterday");
* ``Once(f)`` — f held in some step so far (⧫);
* ``Historically(f)`` — f held in every step so far (⊡);
* ``Since(f, g)`` — g held at some past step and f has held ever since
  (f S g).

The canonical safe-state formula for the video decoder —
"every packet that started decoding has finished" — is provided by
:func:`no_open_segments`, expressed as
``Historically(start → ¬start Since' done)`` via counting; in practice a
counter proposition is simpler and exact, so :class:`SafeStateMonitor`
also supports *balanced* propositions (start/done pairs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

from repro.obs import Observer
from repro.trace import (
    AdaptationApplied,
    BlockRecord,
    CommRecord,
    ConfigCommitted,
    CorruptionRecord,
    RollbackRecord,
    TraceRecord,
)


class PFormula:
    """Base class for past-time LTL formulas (immutable)."""

    __slots__ = ()

    def subformulas(self) -> Tuple["PFormula", ...]:
        """Post-order listing (children before parents), with duplicates."""
        out: List[PFormula] = []
        self._collect(out)
        return tuple(out)

    def _collect(self, out: List["PFormula"]) -> None:
        raise NotImplementedError

    def _step(self, events: AbstractSet[str], now: Dict[int, bool],
              prev: Dict[int, bool]) -> bool:
        raise NotImplementedError


class Prop(PFormula):
    """Atomic proposition: the current step carries this event name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        out.append(self)

    def _step(self, events, now, prev):
        return self.name in events

    def __repr__(self):
        return f"Prop({self.name!r})"


class _Unary(PFormula):
    __slots__ = ("operand",)

    def __init__(self, operand: PFormula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        self.operand._collect(out)
        out.append(self)

    def __repr__(self):
        return f"{type(self).__name__}({self.operand!r})"


class _Binary(PFormula):
    __slots__ = ("left", "right")

    def __init__(self, left: PFormula, right: PFormula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, *a):  # pragma: no cover
        raise AttributeError("immutable")

    def _collect(self, out):
        self.left._collect(out)
        self.right._collect(out)
        out.append(self)

    def __repr__(self):
        return f"{type(self).__name__}({self.left!r}, {self.right!r})"


class PNot(_Unary):
    def _step(self, events, now, prev):
        return not now[id(self.operand)]


class PAnd(_Binary):
    def _step(self, events, now, prev):
        return now[id(self.left)] and now[id(self.right)]


class POr(_Binary):
    def _step(self, events, now, prev):
        return now[id(self.left)] or now[id(self.right)]


class PImplies(_Binary):
    def _step(self, events, now, prev):
        return (not now[id(self.left)]) or now[id(self.right)]


class Previously(_Unary):
    """⊙f — f held at the previous step (false at the first step)."""

    def _step(self, events, now, prev):
        return prev.get(id(self.operand), False)


class Once(_Unary):
    """⧫f — f held at some step up to and including now."""

    def _step(self, events, now, prev):
        return now[id(self.operand)] or prev.get(id(self), False)


class Historically(_Unary):
    """⊡f — f held at every step up to and including now."""

    def _step(self, events, now, prev):
        return now[id(self.operand)] and prev.get(id(self), True)


class Since(_Binary):
    """f S g — g held at some past-or-present step, and f has held since
    (strictly after that step, through now)."""

    def _step(self, events, now, prev):
        return now[id(self.right)] or (
            now[id(self.left)] and prev.get(id(self), False)
        )


class PTLTLMonitor:
    """Incremental evaluator: O(|formula|) per step, O(|formula|) state."""

    def __init__(self, formula: PFormula):
        self.formula = formula
        self._order = formula.subformulas()
        self._prev: Dict[int, bool] = {}
        self.steps = 0
        self.value: Optional[bool] = None

    def step(self, events: Iterable[str]) -> bool:
        """Feed one step's event set; returns the formula's current value."""
        event_set = frozenset(events)
        now: Dict[int, bool] = {}
        for sub in self._order:
            now[id(sub)] = sub._step(event_set, now, self._prev)
        self._prev = now
        self.steps += 1
        self.value = now[id(self.formula)]
        return self.value

    def run(self, trace: Iterable[Iterable[str]]) -> List[bool]:
        """Evaluate over a whole trace; returns the per-step values."""
        return [self.step(events) for events in trace]


@dataclass(frozen=True)
class BalancedPair:
    """A start/done event pair whose balance defines an open obligation."""

    start: str
    done: str


class SafeStateMonitor:
    """Automatic local-safe-state detection (§7 future work).

    Combines a ptLTL formula (arbitrary temporal obligations) with
    *balanced pairs* (counting obligations like "every begin-decode has a
    matching end-decode", which pure ptLTL cannot count).  The process is
    in a safe state when the formula holds **and** every pair is balanced
    — exactly "all the obligations of the formula are fulfilled in a
    state".
    """

    def __init__(
        self,
        formula: Optional[PFormula] = None,
        pairs: Iterable[BalancedPair] = (),
    ):
        self.monitor = PTLTLMonitor(formula) if formula is not None else None
        self.pairs = tuple(pairs)
        self._open: Dict[BalancedPair, int] = {pair: 0 for pair in self.pairs}
        self._callbacks: List[Callable[[], None]] = []

    def on_safe(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever an observation lands in a
        safe state (used by agents waiting to reset)."""
        self._callbacks.append(callback)

    def observe(self, *events: str) -> bool:
        """Feed one step's events; returns whether the state is safe."""
        event_set = frozenset(events)
        for pair in self.pairs:
            if pair.start in event_set:
                self._open[pair] += 1
            if pair.done in event_set:
                if self._open[pair] == 0:
                    raise ValueError(
                        f"unmatched {pair.done!r} (no open {pair.start!r})"
                    )
                self._open[pair] -= 1
        formula_ok = True
        if self.monitor is not None:
            formula_ok = self.monitor.step(event_set)
        if self.safe and self._callbacks:
            for callback in self._callbacks:
                callback()
        return self.safe

    @property
    def open_obligations(self) -> int:
        return sum(self._open.values())

    @property
    def safe(self) -> bool:
        formula_ok = self.monitor.value if self.monitor is not None else True
        if formula_ok is None:  # no step observed yet: vacuously safe
            formula_ok = True
        return bool(formula_ok) and self.open_obligations == 0


def no_open_segments(start: str = "start", done: str = "done") -> SafeStateMonitor:
    """The canonical decoder safe-state monitor: no segment mid-flight."""
    return SafeStateMonitor(pairs=[BalancedPair(start, done)])


def record_events(record: TraceRecord) -> Tuple[str, ...]:
    """Default trace-record → proposition mapping for :class:`TemporalObserver`.

    Communication records contribute their atomic-action name directly
    (so CCS-style formulas can be written over ``encode``/``send``/...);
    lifecycle records contribute a fixed proposition each.  Records with
    no temporal meaning (notes) map to the empty tuple and do not step
    the monitor.
    """
    if isinstance(record, CommRecord):
        return (record.action,)
    if isinstance(record, BlockRecord):
        return ("block",) if record.blocked else ("resume",)
    if isinstance(record, ConfigCommitted):
        return ("commit",)
    if isinstance(record, AdaptationApplied):
        return ("adapt",)
    if isinstance(record, RollbackRecord):
        return ("rollback",)
    if isinstance(record, CorruptionRecord):
        return ("corruption",)
    return ()


@dataclass
class TemporalReport:
    """Terminal summary of a :class:`TemporalObserver`."""

    steps: int = 0
    holds: Optional[bool] = None
    unsafe_steps: int = 0
    first_unsafe_time: Optional[float] = None

    @property
    def ever_unsafe(self) -> bool:
        return self.unsafe_steps > 0


class TemporalObserver(Observer):
    """ptLTL / safe-state monitoring as an observation-bus subscriber.

    Replaces the bespoke per-application plumbing (``MonitoredApp``
    calling ``SafeStateMonitor.observe`` by hand): subscribe one of these
    to a trace's bus and the monitor is stepped from the published record
    stream itself, on any backend.  Wraps either a
    :class:`SafeStateMonitor` (balanced pairs + formula; its safe-state
    callbacks keep firing) or a bare :class:`PTLTLMonitor`.

    ``events`` maps each record to the step's proposition set
    (default :func:`record_events`); records mapping to no events are
    skipped, and an optional ``process`` filter restricts the stream to
    one process's records — local safe states are per-process in §3.2.
    """

    def __init__(
        self,
        monitor: Union[SafeStateMonitor, PTLTLMonitor],
        events: Callable[[TraceRecord], Iterable[str]] = record_events,
        process: Optional[str] = None,
        name: str = "temporal",
    ):
        self.monitor = monitor
        self._events = events
        self._process = process
        self._name = name
        self._report = TemporalReport()

    @property
    def name(self) -> str:
        return self._name

    def feed(self, record: TraceRecord) -> None:
        if self._process is not None:
            owner = getattr(record, "process", None)
            if owner != self._process:
                return
        events = tuple(self._events(record))
        if not events:
            return
        if isinstance(self.monitor, SafeStateMonitor):
            holds = self.monitor.observe(*events)
        else:
            holds = self.monitor.step(events)
        report = self._report
        report.steps += 1
        report.holds = holds
        if not holds:
            report.unsafe_steps += 1
            if report.first_unsafe_time is None:
                report.first_unsafe_time = record.time

    @property
    def holds(self) -> Optional[bool]:
        """Current monitor value (None before the first stepped record)."""
        return self._report.holds

    def finish(self) -> TemporalReport:
        return self._report
