"""Unit tests for the adaptation-spec static analyzer (``repro.lint``)."""

import json

import pytest

from repro.lint import (
    CODES,
    LintReport,
    Severity,
    describe_code,
    lint_path,
    lint_system,
    lint_text,
    render_json,
    render_sarif,
    render_text,
)
from repro.manifest import loads, video_manifest_text
from repro.span import Span

FIXTURE = "tests/lint/fixtures/defective.manifest"
RACING = "examples/racing.manifest"

MINIMAL = """
[components]
A @ p1
B1 @ p2
B2 @ p2

[invariants]
presence : A
exclusive : one_of(B1, B2)

[actions]
swap : B1 -> B2 @ 5
unswap : B2 -> B1 @ 5

[configurations]
start = A, B1
goal = A, B2
"""


def codes_of(report, code):
    return [d for d in report if d.code == code]


class TestDiagnosticModel:
    def test_severity_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.NOTE
        assert Severity.from_label("warning") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.from_label("fatal")

    def test_every_code_documented(self):
        for code in CODES:
            assert describe_code(code).startswith(code)

    def test_unregistered_code_rejected(self):
        report = LintReport()
        with pytest.raises(ValueError):
            report.add("SA999", "nope", Span(1))

    def test_fails_threshold(self):
        report = LintReport()
        report.add("SA403", "radius", Span(1))
        assert not report.fails(Severity.WARNING)
        assert report.fails(Severity.NOTE)
        report.add("SA202", "unsat", Span(2))
        assert report.fails(Severity.ERROR)


class TestCleanManifest:
    def test_minimal_is_clean(self):
        report = lint_text(MINIMAL)
        assert not report.errors
        assert not report.warnings

    def test_summary_when_empty(self):
        assert LintReport().summary() == "clean: 0 diagnostics"


class TestFixtureCoverage:
    """The seeded-defect fixture fires every registered code."""

    @pytest.fixture(scope="class")
    def report(self):
        return lint_path(FIXTURE)

    def test_every_code_fires(self, report):
        # SA307 (safe-space analysis skipped) is mutually exclusive with
        # the SA301–SA306 findings in a single report by construction —
        # it fires only when those checks do NOT run.  It is covered by
        # TestEnumerationCap below.  SA504 (inconclusive under budget)
        # likewise fires only in lazy mode with an exhausted budget; it
        # is covered by TestPropertyBudget.  SA605 (interference analysis
        # restricted) fires only above the cap — see test_lint_lazy.
        # SA601/SA603 need racing pairs that *share* a safe source, which
        # the defective fixture's invariant web forbids; they fire in
        # examples/racing.manifest, so coverage is the union of both.
        racing = lint_path(RACING)
        fired = set(report.codes()) | set(racing.codes())
        assert fired == set(CODES) - {"SA307", "SA504", "SA605"}

    def test_exit_fails_on_error(self, report):
        assert report.fails(Severity.ERROR)

    def test_spans_point_into_the_file(self, report):
        text = open(FIXTURE, encoding="utf-8").read().splitlines()
        for diagnostic in report:
            assert 1 <= diagnostic.span.line <= len(text)
            assert diagnostic.path == FIXTURE

    def test_duplicate_component_span(self, report):
        (dup,) = codes_of(report, "SA105")
        assert dup.span.line == 6
        assert dup.related[0].span.line == 5

    def test_conflicting_pair_links_both_sides(self, report):
        (conflict,) = codes_of(report, "SA203")
        assert "needs_c" in conflict.message and "no_c" in conflict.message
        assert conflict.related[0].span.line < conflict.span.line

    def test_dominated_action_names_dominator(self, report):
        (dominated,) = codes_of(report, "SA302")
        assert "swap2" in dominated.message
        assert "cost 5 < 8" in dominated.message

    def test_dead_actions(self, report):
        dead = {d.message.split("'")[1] for d in codes_of(report, "SA301")}
        assert dead == {"dead", "blackout", "stall"}

    def test_unknown_names_are_listed(self, report):
        (ghost,) = codes_of(report, "SA101")
        assert "GHOST" in ghost.message
        (phantom,) = codes_of(report, "SA102")
        assert "GHOST2" in phantom.message

    def test_width_mismatch_details(self, report):
        (width,) = codes_of(report, "SA103")
        assert "width 4" in width.message and "9 component(s)" in width.message

    def test_ccs_prefix(self, report):
        (prefix,) = codes_of(report, "SA401")
        assert "seg1" in prefix.message and "seg0" in prefix.message

    def test_property_parse_error_span_offsets_into_the_formula(self):
        # [properties] parse errors carry spans like action errors do:
        # the column points at the offending token, not at column 1
        text = "[components]\nA @ p1\n\n[properties]\nbad : once(A &\n"
        report = lint_text(text)
        (broken,) = [
            d for d in codes_of(report, "SA100") if "property" in d.message
        ]
        assert broken.span.line == 5
        # "bad : " is 6 columns; the error sits inside the formula text
        assert broken.span.column > 6


class TestRecovery:
    """Defective entries are dropped; analysis continues on the rest."""

    def test_unsat_invariant_does_not_kill_downstream(self):
        report = lint_text(
            MINIMAL + "\n[invariants]\nnever : A & !A\n"
        )
        assert codes_of(report, "SA202")
        # SA3xx still ran: the safe space of the remaining invariants
        # is non-empty and connected, so no SA305.
        assert not codes_of(report, "SA305")
        assert not codes_of(report, "SA203")

    def test_empty_space_reported_once_when_unfixable(self):
        # Three-way conflict no pairwise drop can see: each pair is
        # satisfiable, the conjunction is not.
        text = """
[components]
X
Y

[invariants]
one : X | Y
two : !X
three : !Y

[actions]
flip : X -> Y @ 1
"""
        report = lint_text(text)
        assert codes_of(report, "SA203")
        assert any("skipped" in reason for reason in report.skipped)


class TestInMemorySystem:
    def test_lint_system_on_video(self):
        manifest = loads(video_manifest_text())
        report = lint_system(manifest)
        assert not report.errors
        # The paper's own library: constituent replaces A3/A5/A10-A12
        # label no safe arc on their own (they only matter composed).
        dead = {d.message.split("'")[1] for d in codes_of(report, "SA301")}
        assert dead == {"A3", "A5", "A10", "A11", "A12"}
        # The full-system composites block every process at once.
        blocking = {d.message.split("'")[1] for d in codes_of(report, "SA402")}
        assert blocking == {"A13", "A14", "A15"}

    def test_lint_system_spans_come_from_manifest(self):
        text = video_manifest_text()
        manifest = loads(text)
        report = lint_system(manifest)
        lines = text.splitlines()
        for diagnostic in report:
            assert 1 <= diagnostic.span.line <= len(lines)


class TestEnumerationCap:
    """The configurable SA3xx cap and its explicit SA307 skip note."""

    def test_default_cap_runs_sa3xx_on_video(self):
        report = lint_text(video_manifest_text())
        assert codes_of(report, "SA301")  # safe-space analysis ran
        assert not codes_of(report, "SA307")

    def test_low_cap_skips_sa3xx_with_explicit_note(self):
        report = lint_text(video_manifest_text(), max_enum_components=3)
        assert not codes_of(report, "SA301")
        (note,) = codes_of(report, "SA307")
        assert note.severity is Severity.NOTE
        assert "7 components" in note.message
        assert "3-component" in note.message
        # the legacy skip line is kept alongside the diagnostic
        assert any("SA3xx skipped" in reason for reason in report.skipped)

    def test_raised_cap_reenables_sa3xx(self):
        low = lint_text(video_manifest_text(), max_enum_components=6)
        assert codes_of(low, "SA307")
        raised = lint_text(video_manifest_text(), max_enum_components=7)
        assert not codes_of(raised, "SA307")
        assert codes_of(raised, "SA301")

    def test_lint_system_honours_cap(self):
        manifest = loads(video_manifest_text())
        report = lint_system(manifest, max_enum_components=2)
        assert codes_of(report, "SA307")
        assert not codes_of(report, "SA301")

    def test_default_cap_value(self):
        from repro.lint import MAX_ENUM_COMPONENTS

        assert MAX_ENUM_COMPONENTS == 24  # raised with parallel enumeration

    def test_workers_option_changes_nothing_semantically(self):
        serial = lint_text(video_manifest_text())
        parallel = lint_text(video_manifest_text(), workers=2)
        assert sorted(d.code for d in serial) == sorted(d.code for d in parallel)


class TestTemporalProperties:
    """The SA5xx stage: compiled-property checks over the path set."""

    @pytest.fixture(scope="class")
    def report(self):
        return lint_path(FIXTURE)

    def test_unsatisfiable_property(self, report):
        (unsat,) = codes_of(report, "SA501")
        assert "impossible" in unsat.message

    def test_optimal_path_violation(self, report):
        (optimal,) = codes_of(report, "SA502")
        assert "no_u" in optimal.message
        assert "'start'" in optimal.message and "'uplift'" in optimal.message
        assert "[free]" in optimal.message

    def test_alternate_path_violation_carries_counterexample(self, report):
        (alternate,) = codes_of(report, "SA503")
        assert "stay_off_b1" in alternate.message
        assert "unswap" in alternate.message  # minimized prefix
        assert "cost 9" in alternate.message

    def test_unknown_component_is_an_error(self, report):
        (ghost,) = codes_of(report, "SA505")
        assert ghost.severity is Severity.ERROR
        assert "GHOST3" in ghost.message

    def test_unsatisfiable_property_skips_path_checks(self, report):
        # 'impossible' fails on every configuration of every path; only
        # the SA501 root cause is reported, never SA502/SA503 echoes.
        for code in ("SA502", "SA503"):
            for diagnostic in codes_of(report, code):
                assert "impossible" not in diagnostic.message

    def test_path_checks_survive_the_enumeration_cap(self):
        # Lazy mode: SA501 is skipped (needs the enumerated space) but
        # the path-quantified checks still run on the frontier.
        report = lint_path(FIXTURE, max_enum_components=3)
        assert not codes_of(report, "SA501")
        assert codes_of(report, "SA502")
        assert codes_of(report, "SA503")
        assert any("SA501 skipped" in reason for reason in report.skipped)


class TestPropertyBudget:
    """SA504: lazy path checks that run out of budget are inconclusive."""

    def test_exhausted_budget_reports_sa504(self, monkeypatch):
        import repro.ltl.paths as paths

        monkeypatch.setattr(paths, "LAZY_VERIFY_EXPANSIONS", 1)
        report = lint_path(FIXTURE, max_enum_components=3)
        notes = codes_of(report, "SA504")
        assert notes and all(n.severity is Severity.NOTE for n in notes)
        assert not codes_of(report, "SA502")
        assert not codes_of(report, "SA503")


class TestRenderers:
    @pytest.fixture(scope="class")
    def report(self):
        return lint_path(FIXTURE)

    def test_text_mentions_summary(self, report):
        text = render_text(report)
        assert text.endswith(
            f"{len(report.errors)} error(s), {len(report.warnings)} "
            f"warning(s), {len(report.notes)} note(s)"
        )

    def test_json_roundtrips(self, report):
        payload = json.loads(render_json(report))
        assert payload["tool"] == "repro-lint"
        assert len(payload["diagnostics"]) == len(report)
        assert payload["summary"]["errors"] == len(report.errors)
        first = payload["diagnostics"][0]
        assert {"code", "severity", "message", "path", "span", "related"} <= set(first)

    def test_sarif_shape(self, report):
        sarif = json.loads(render_sarif(report))
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert rule_ids == set(report.codes())
        assert len(run["results"]) == len(report)
        for result in run["results"]:
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert result["level"] in ("error", "warning", "note")
