"""Execution traces shared by the simulator, live runtime, and checker.

The paper's safety definition is a property of executions: dependency
relationships must hold in every (committed) configuration, and for every
critical-communication identifier CID the extracted action sequence
``S_CID`` must belong to the CCS language.  Everything that executes
adaptations in this library — the discrete-event simulator, the threaded
live runtime, and the baseline strategies — emits the same typed trace
records so one checker (:mod:`repro.safety`) can judge them all.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from functools import lru_cache as _lru_cache
from typing import (
    TYPE_CHECKING,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle with repro.obs)
    from repro.obs import ObservationBus


@dataclass(frozen=True)
class TraceRecord:
    """Base record: everything is timestamped with simulation/wall time."""

    time: float


@dataclass(frozen=True)
class ConfigCommitted(TraceRecord):
    """The global configuration reached a new committed value.

    Emitted when an adaptation step completes (and once at system start).
    Between two commits the system is either quiescent or mid-step with the
    affected processes blocked — the paper's atomicity assumption.
    """

    configuration: FrozenSet[str]
    step_id: str = "initial"
    action_id: str = ""


@dataclass(frozen=True)
class CommRecord(TraceRecord):
    """One atomic action of a critical communication segment.

    ``cid`` is the paper's critical communication identifier (a natural
    number identifying the segment instance, e.g. a packet sequence
    number); ``action`` names the atomic action (e.g. ``"encode"``).
    """

    cid: int
    action: str
    component: str = ""
    process: str = ""


@dataclass(frozen=True)
class AdaptationApplied(TraceRecord):
    """A local in-action executed on a process (structure altered)."""

    process: str
    action_id: str
    removes: FrozenSet[str]
    adds: FrozenSet[str]


@dataclass(frozen=True)
class BlockRecord(TraceRecord):
    """A process blocked (``blocked=True``) or resumed (``False``)."""

    process: str
    blocked: bool


@dataclass(frozen=True)
class CorruptionRecord(TraceRecord):
    """Application-level evidence of unsafe adaptation (e.g. a frame whose
    checksum failed because it was encrypted under a scheme with no matching
    decoder present)."""

    process: str
    detail: str
    cid: Optional[int] = None


@dataclass(frozen=True)
class RollbackRecord(TraceRecord):
    """A process rolled back a (partially) applied step."""

    process: str
    action_id: str


@dataclass(frozen=True)
class NoteRecord(TraceRecord):
    """Free-form annotation (protocol milestones, debugging)."""

    text: str


R = TypeVar("R", bound=TraceRecord)

# All concrete record types, for (de)serialization.
_RECORD_TYPES = (
    ConfigCommitted,
    CommRecord,
    AdaptationApplied,
    BlockRecord,
    CorruptionRecord,
    RollbackRecord,
    NoteRecord,
)


class Trace:
    """Append-only ordered sequence of trace records.

    Thread-safe: the live runtime appends from the manager receive-loop
    thread, timer threads, and per-agent host threads concurrently, and
    callers may iterate mid-run.  All mutation happens under an internal
    lock and every read path (iteration, filtering, serialization) works
    on an atomic :meth:`snapshot`.

    A trace may carry an attached :class:`~repro.obs.ObservationBus`:
    every appended record is *published* to the bus under the append
    lock, so streaming observers (incremental safety checking, metrics,
    live rendering, online enforcement) see the exact record sequence in
    trace order — on every backend, from every emitter.  A publishing
    observer that raises (the enforcement tripwire) aborts the append's
    caller, but the record itself is already recorded: the trace keeps
    the evidence of the violation that tripped it.
    """

    def __init__(
        self,
        records: Iterable[TraceRecord] = (),
        bus: "Optional[ObservationBus]" = None,
    ):
        self._records: List[TraceRecord] = list(records)
        self._lock = threading.RLock()
        # Seed records predate the bus attachment and are NOT published;
        # use attach_bus(replay=True) to stream history to late joiners.
        self._bus: "Optional[ObservationBus]" = bus

    @property
    def bus(self) -> "Optional[ObservationBus]":
        """The attached observation bus, if any."""
        return self._bus

    def attach_bus(self, bus: "Optional[ObservationBus]", replay: bool = False) -> None:
        """Attach (or with ``None`` detach) an observation bus.

        With ``replay=True`` every record already in the trace is
        published first, so observers joining a run in flight see the
        full history before any live record.
        """
        with self._lock:
            self._bus = bus
            if bus is not None and replay:
                for record in self._records:
                    bus.publish(record)

    def append(self, record: TraceRecord) -> None:
        with self._lock:
            self._records.append(record)
            if self._bus is not None:
                self._bus.publish(record)

    def extend(self, records: Iterable[TraceRecord]) -> None:
        with self._lock:
            for record in records:
                self._records.append(record)
                if self._bus is not None:
                    self._bus.publish(record)

    def snapshot(self) -> Tuple[TraceRecord, ...]:
        """Atomic copy of the records appended so far."""
        with self._lock:
            return tuple(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.snapshot())

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def of_type(self, record_type: Type[R]) -> Tuple[R, ...]:
        """All records of a given type, in trace order."""
        return tuple(r for r in self.snapshot() if isinstance(r, record_type))

    def comm_sequence(self, cid: int) -> Tuple[str, ...]:
        """The paper's ``S_CID``: atomic actions of one segment, in order."""
        return tuple(
            r.action
            for r in self.snapshot()
            if isinstance(r, CommRecord) and r.cid == cid
        )

    def cids(self) -> Tuple[int, ...]:
        """All critical-communication identifiers seen, in first-seen order."""
        seen: List[int] = []
        known = set()
        for record in self.snapshot():
            if isinstance(record, CommRecord) and record.cid not in known:
                known.add(record.cid)
                seen.append(record.cid)
        return tuple(seen)

    def committed_configurations(self) -> Tuple[FrozenSet[str], ...]:
        return tuple(r.configuration for r in self.of_type(ConfigCommitted))

    def final_configuration(self) -> Optional[FrozenSet[str]]:
        commits = self.of_type(ConfigCommitted)
        return commits[-1].configuration if commits else None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Trace({len(self)} records)"

    # -- persistence ------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize to JSON lines (one record per line, type-tagged).

        Traces are the audit artifact of an adaptation; persisting them
        lets the safety checker run offline/after the fact.
        """
        import dataclasses
        import json

        lines = []
        for record in self.snapshot():
            payload = {"type": type(record).__name__}
            for field_info in dataclasses.fields(record):
                value = getattr(record, field_info.name)
                if isinstance(value, frozenset):
                    value = sorted(value)
                elif isinstance(value, tuple):
                    value = list(value)
                payload[field_info.name] = value
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_jsonl`."""
        return cls(iter_jsonl(text.splitlines()))


def iter_jsonl(lines: Iterable[str]) -> Iterator[TraceRecord]:
    """Decode trace records from JSON lines, one at a time.

    Accepts any iterable of lines — including an open file handle — so a
    persisted trace can stream through the incremental checker
    (``repro trace check --stream``) without ever materializing the
    record list.  Blank lines are skipped; unknown record types raise
    ``ValueError`` with the offending line number.
    """
    import json

    registry = {klass.__name__: klass for klass in _RECORD_TYPES}
    for line_no, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        payload = json.loads(line)
        type_name = payload.pop("type", None)
        klass = registry.get(type_name)
        if klass is None:
            raise ValueError(f"line {line_no}: unknown record type {type_name!r}")
        yield _decode_record(klass, payload)


@_lru_cache(maxsize=None)
def _field_hints(klass: Type[TraceRecord]) -> Tuple[Tuple[str, object], ...]:
    """Resolved (name, type) pairs for a record class's dataclass fields."""
    import dataclasses
    import typing

    hints = typing.get_type_hints(klass)
    return tuple((f.name, hints.get(f.name)) for f in dataclasses.fields(klass))


def _decode_record(klass: Type[TraceRecord], payload: dict) -> TraceRecord:
    """Build a record from a JSON payload, coercing by declared field type.

    JSON has no frozenset/tuple, so container fields round-trip through
    lists; each list is coerced back to whatever the dataclass field
    actually declares (``FrozenSet`` → frozenset, ``Tuple`` → tuple,
    ``List`` stays a list) instead of being blanket-converted.
    """
    import typing

    kwargs = {}
    for name, hint in _field_hints(klass):
        if name not in payload:
            continue
        value = payload[name]
        if isinstance(value, list) and hint is not None:
            origin = typing.get_origin(hint) or hint
            if origin is frozenset:
                value = frozenset(value)
            elif origin in (tuple, set):
                value = origin(value)
        kwargs[name] = value
    return klass(**kwargs)
