"""Cross-backend conformance: one protocol, three substrates, same answers.

Runs the Section 5 video scenario and an injected-failure rollback
scenario on every execution backend (discrete-event sim, threaded live
runtime, asyncio) with the *same* portable app adapters, and asserts:

* the safety checker passes each backend's trace with zero violations;
* every backend's ``committed_configurations()`` sequence agrees with
  the sim backend's (the substrate's semantics, not the backend, decide
  what gets committed).
"""

import pytest

from repro.apps.video.system import (
    paper_source,
    paper_target,
    video_actions,
    video_invariants,
    video_universe,
)
from repro.core.actions import ActionLibrary, AdaptiveAction
from repro.core.invariants import InvariantSet
from repro.core.model import ComponentUniverse
from repro.exec.aio import run_aio_adaptation
from repro.exec.app import QuiescentAdapter, StuckAdapter
from repro.protocol.failures import FailurePolicy
from repro.runtime import LiveAdaptationSystem
from repro.obs import MetricsObserver, ObservationBus
from repro.safety import SafetyChecker, check_safe
from repro.sim import AdaptationCluster

# Wall time per protocol unit on the live/aio backends: fast enough for
# CI, slow enough that 30-unit policy timeouts are well above scheduler
# jitter.
TIME_SCALE = 0.0005


def run_sim(universe, invariants, actions, source, target, make_app, policy=None,
            bus=None):
    cluster = AdaptationCluster(
        universe,
        invariants,
        actions,
        source,
        apps={p: make_app() for p in universe.processes()},
        policy=policy,
        bus=bus,
    )
    outcome = cluster.adapt_to(target)
    return outcome, cluster.trace


def run_live(universe, invariants, actions, source, target, make_app, policy=None,
             bus=None):
    system = LiveAdaptationSystem(
        universe,
        invariants,
        actions,
        source,
        apps={p: make_app() for p in universe.processes()},
        policy=policy,
        time_scale=TIME_SCALE,
        bus=bus,
    )
    with system:
        outcome = system.adapt_to(target, timeout=30.0)
    return outcome, system.trace


def run_aio(universe, invariants, actions, source, target, make_app, policy=None,
            bus=None):
    outcome, system = run_aio_adaptation(
        universe,
        invariants,
        actions,
        source,
        target,
        apps={p: make_app() for p in universe.processes()},
        policy=policy,
        time_scale=TIME_SCALE,
        timeout=30.0,
        bus=bus,
    )
    return outcome, system.trace


BACKENDS = {"sim": run_sim, "live": run_live, "aio": run_aio}


def run_all_backends(universe, invariants, actions, source, target, make_app,
                     policy=None):
    return {
        name: runner(universe, invariants, actions, source, target, make_app, policy)
        for name, runner in BACKENDS.items()
    }


class TestSection5Scenario:
    """The paper's §5 MAP realization, on every backend."""

    @pytest.fixture(scope="class")
    def results(self):
        universe = video_universe()
        return run_all_backends(
            universe,
            video_invariants(),
            video_actions(),
            paper_source(universe),
            paper_target(universe),
            lambda: QuiescentAdapter(quiesce_delay=2.0),
        )

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_completes(self, results, backend):
        outcome, _ = results[backend]
        assert outcome.succeeded, f"{backend}: {outcome.status} ({outcome.reason})"
        assert outcome.steps_committed == 5
        assert outcome.steps_rolled_back == 0

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_safety_checker_passes(self, results, backend):
        _, trace = results[backend]
        report = check_safe(trace, video_invariants())
        assert report.ok, f"{backend}: {report.violations[:3]}"
        assert not report.violations

    @pytest.mark.parametrize("backend", ("live", "aio"))
    def test_committed_sequence_agrees_with_sim(self, results, backend):
        _, sim_trace = results["sim"]
        _, trace = results[backend]
        assert trace.committed_configurations() == sim_trace.committed_configurations()


class TestInjectedFailureRollback:
    """Fail-to-reset on the only path: §4.4 drives every backend back."""

    POLICY = FailurePolicy(
        reset_timeout=30.0,
        resume_timeout=20.0,
        rollback_timeout=20.0,
        retransmit_interval=10.0,
    )

    @pytest.fixture(scope="class")
    def results(self):
        universe = ComponentUniverse.from_names(
            ["F1", "F2"], {"F1": "node", "F2": "node"}
        )
        invariants = InvariantSet.of("one_of(F1, F2)")
        actions = ActionLibrary([AdaptiveAction.replace("S12", "F1", "F2", 5)])
        return run_all_backends(
            universe,
            invariants,
            actions,
            universe.configuration("F1"),
            universe.configuration("F2"),
            StuckAdapter,
            policy=self.POLICY,
        ), invariants

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_aborts_at_source(self, results, backend):
        outcome, _ = results[0][backend]
        assert outcome.status in ("aborted", "await_user")
        assert outcome.configuration.members == frozenset({"F1"})

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_safety_checker_passes(self, results, backend):
        _, trace = results[0][backend]
        report = check_safe(trace, results[1])
        assert report.ok, f"{backend}: {report.violations[:3]}"

    @pytest.mark.parametrize("backend", ("live", "aio"))
    def test_committed_sequence_agrees_with_sim(self, results, backend):
        _, sim_trace = results[0]["sim"]
        _, trace = results[0][backend]
        assert trace.committed_configurations() == sim_trace.committed_configurations()


class TestStreamingObservation:
    """The observation bus on every backend: streaming verdict == batch
    replay, and online enforcement is inert on the safe protocol."""

    def _run(self, backend, enforce):
        universe = video_universe()
        invariants = video_invariants()
        checker = SafetyChecker(invariants, universe=universe)
        stream = checker.streaming(enforce=enforce)
        metrics = MetricsObserver()
        bus = ObservationBus(stream, metrics)
        outcome, trace = BACKENDS[backend](
            universe,
            invariants,
            video_actions(),
            paper_source(universe),
            paper_target(universe),
            lambda: QuiescentAdapter(quiesce_delay=2.0),
            bus=bus,
        )
        return checker, stream, metrics, bus, outcome, trace

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_streaming_verdict_matches_batch_replay(self, backend):
        checker, stream, metrics, bus, outcome, trace = self._run(
            backend, enforce=False
        )
        assert outcome.succeeded
        # Every emitted record streamed through the bus, in trace order.
        assert bus.records_published == len(trace)
        assert metrics.finish().records == len(trace)
        # The incremental verdict is byte-identical to the replay oracle.
        assert stream.finish() == checker.check_replay(trace)

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_enforcement_inert_on_safe_protocol(self, backend):
        _, stream, _, _, outcome, _ = self._run(backend, enforce=True)
        assert outcome.succeeded, f"{backend}: enforcement tripped a safe run"
        assert not stream.tripped
        assert stream.finish().ok
